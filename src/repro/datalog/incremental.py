"""Incremental view maintenance for Datalog fixpoints (DRed-style).

The batch :class:`~repro.datalog.engine.Engine` evaluates a program to a
fixpoint once.  The service layer, however, faces a *stream* of small
EDB changes, and re-running the whole fixpoint per mutation batch costs
O(program x database) every time.  This module maintains the fixpoint
under EDB additions and removals:

* **additions** continue the semi-naive iteration: the new facts are
  exactly a delta, and seeding every rule occurrence with them (the same
  ``(rule, occurrence)`` seeding the engine's own rounds use — including
  the compiled evaluators, whose captured index buckets the
  :class:`~repro.datalog.database.Database` updates in place) derives
  precisely the consequences the full run would have added.  Monotone
  aggregates fold the new contributions into their live accumulator
  state, so additions remain sound with ``msum``-style aggregation;
* **removals** run *delete-and-rederive* (DRed, Gupta-Mumick-Subrahmanian):
  first every fact derivable from a deleted fact is transitively
  over-deleted, then each over-deleted fact is checked for an
  alternative derivation among the survivors and re-inserted (and its
  consequences re-propagated) when one exists.

DRed was chosen over counting because the engine's existential rules
invent labelled nulls: a counting scheme would have to track derivation
counts per null-instantiated fact across skolem regeneration, while
DRed only needs the deterministic skolemization the engine already
guarantees (re-derivation regenerates bit-identical nulls).

Outside the supported fragment the maintainer falls back to a full
recompute from the maintained EDB — the same fresh-engine evaluation the
tests use as the bit-identity oracle:

* programs with **negation** fall back for any update (an addition can
  retract a negative premise, so additions are not monotone either);
* programs with **aggregates** fall back for updates containing
  removals (retracting a contribution is not expressible against the
  monotone accumulator state).

Provenance is not maintained incrementally; construct the engine without
it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from .atoms import Negation
from .builtins import FunctionRegistry
from .database import Database, Fact, FactValues
from .engine import Engine
from .rules import Program
from .terms import Constant, Variable


@dataclass
class UpdateStats:
    """What one :meth:`IncrementalEngine.update` call did."""

    #: "seminaive" (delta-driven) or "recompute" (full fallback)
    mode: str
    #: EDB facts actually added / removed by the update
    added: int = 0
    removed: int = 0
    #: facts transitively over-deleted by the DRed deletion phase
    overdeleted: int = 0
    #: over-deleted facts that survived via an alternative derivation
    rederived: int = 0
    #: facts newly derived by the addition phase
    derived: int = 0


class IncrementalEngine:
    """Maintains a program's fixpoint under EDB additions and removals.

    The wrapped engine's database is evaluated once at construction and
    then *maintained*: after every :meth:`update` the database equals
    (or, in the fallback, is recomputed to) the fixpoint of the program
    over the current EDB.
    """

    def __init__(
        self,
        program: Program | str,
        facts: Iterable[Fact] = (),
        functions: FunctionRegistry | None = None,
        tracer=None,
    ):
        if isinstance(program, str):
            from .parser import parse_program

            program = parse_program(program)
        # facts declared in the program text join the maintained EDB; the
        # engines are always constructed over a facts-free clone so a
        # fallback recompute cannot resurrect a removed program fact
        self.program = Program(rules=list(program.rules), facts=[])
        self._functions = functions
        self._tracer = tracer
        self._edb: dict[Fact, None] = {}  # insertion-ordered fact set
        for predicate, values in list(program.facts) + [
            (predicate, tuple(values)) for predicate, values in facts
        ]:
            self._edb.setdefault((predicate, tuple(values)), None)
        self._has_negation = any(
            isinstance(literal, Negation)
            for rule in self.program.rules
            for literal in rule.body
        )
        self._has_aggregates = any(
            next(rule.aggregates(), None) is not None for rule in self.program.rules
        )
        self.full_recomputes = 0
        self.engine = self._fresh_engine()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    @property
    def database(self) -> Database:
        """The maintained fixpoint database (replaced on fallback)."""
        return self.engine.database

    def edb_facts(self) -> list[Fact]:
        """The maintained extensional facts, in insertion order."""
        return list(self._edb)

    def query(self, predicate: str, pattern: dict[int, object] | None = None):
        return self.engine.query(predicate, pattern)

    def holds(self, predicate: str, values: FactValues) -> bool:
        return self.engine.holds(predicate, values)

    def update(
        self,
        additions: Iterable[Fact] = (),
        removals: Iterable[Fact] = (),
    ) -> UpdateStats:
        """Apply one batch of EDB changes; removals apply before additions.

        Removals name extensional facts; a removal of a fact that is not
        in the maintained EDB is a no-op (in particular, purely derived
        facts cannot be removed — the program still derives them).
        """
        to_remove: list[Fact] = []
        for predicate, values in removals:
            fact = (predicate, tuple(values))
            if fact in self._edb:
                del self._edb[fact]
                to_remove.append(fact)
        to_add: list[Fact] = []
        for predicate, values in additions:
            fact = (predicate, tuple(values))
            if fact not in self._edb:
                self._edb[fact] = None
                to_add.append(fact)

        if self._has_negation or (to_remove and self._has_aggregates):
            self.full_recomputes += 1
            self.engine = self._fresh_engine()
            return UpdateStats(
                mode="recompute", added=len(to_add), removed=len(to_remove)
            )

        stats = UpdateStats(
            mode="seminaive", added=len(to_add), removed=len(to_remove)
        )
        if to_remove:
            stats.overdeleted, stats.rederived = self._delete(to_remove)
        if to_add:
            database = self.engine.database
            inserted = [
                fact for fact in to_add if database.add(fact[0], fact[1])
            ]
            stats.derived = self._propagate(inserted) - len(inserted)
        return stats

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _fresh_engine(self) -> Engine:
        engine = Engine(
            self.program,
            Database(list(self._edb)),
            functions=self._functions,
            tracer=self._tracer,
        )
        engine.run()
        return engine

    def _propagate(self, fresh: list[Fact]) -> int:
        """Semi-naive continuation: derive all consequences of ``fresh``.

        ``fresh`` must already be in the database.  Mirrors the engine's
        own delta rounds — same ``(rule, occurrence)`` seeding, so the
        compiled evaluators (and their captured index buckets) do the
        work.  Returns the total number of facts derived, inputs included.
        """
        engine = self.engine
        total = len(fresh)
        delta = list(fresh)
        while delta:
            by_predicate: dict[str, list[FactValues]] = {}
            for predicate, values in delta:
                by_predicate.setdefault(predicate, []).append(values)
            delta = []
            for rule in engine.program.rules:
                body = rule.body
                for occurrence, literal_index in enumerate(rule.positive_positions()):
                    seeds = by_predicate.get(body[literal_index].predicate)
                    if seeds:
                        delta.extend(engine._apply_rule(rule, occurrence, seeds))
            engine.stats.iterations += 1
            total += len(delta)
        return total

    def _delete(self, removals: list[Fact]) -> tuple[int, int]:
        """DRed: over-delete, then re-derive survivors.

        Returns ``(overdeleted, rederived)`` counts.  ``removals`` have
        already left the EDB but are still physically in the database
        (they seed the over-deletion joins against the pre-deletion
        state, as DRed requires).
        """
        engine = self.engine
        database = engine.database

        # Phase 1 — over-delete: everything derivable from a deleted fact
        # w.r.t. the old database is suspect.  Seed every positive rule
        # occurrence with the deletion frontier, to a fixpoint.
        deleted: dict[Fact, None] = {}
        frontier = [fact for fact in removals if database.contains(*fact)]
        for fact in frontier:
            deleted[fact] = None
        while frontier:
            by_predicate: dict[str, list[FactValues]] = {}
            for predicate, values in frontier:
                by_predicate.setdefault(predicate, []).append(values)
            frontier = []
            for rule in engine.program.rules:
                body = rule.body
                for literal_index in rule.positive_positions():
                    seeds = by_predicate.get(body[literal_index].predicate)
                    if not seeds:
                        continue
                    for fact in self._overdeletion_candidates(
                        rule, literal_index, seeds
                    ):
                        if fact in deleted:
                            continue
                        if not database.contains(*fact):
                            continue
                        if fact in self._edb:
                            continue  # extensional support survives
                        deleted[fact] = None
                        frontier.append(fact)
        for predicate, values in deleted:
            database.remove(predicate, values)

        # Phase 2 — re-derive: an over-deleted fact with an alternative
        # derivation among the survivors comes back; its consequences are
        # then restored by the normal addition propagation (which can
        # transitively resurrect other over-deleted facts).
        rederived: list[Fact] = []
        for fact in deleted:
            if self._derivable(fact):
                database.add(*fact)
                rederived.append(fact)
        if rederived:
            self._propagate(rederived)
        return len(deleted), len(rederived)

    def _overdeletion_candidates(
        self, rule, literal_index: int, seeds: list[FactValues]
    ) -> list[Fact]:
        """Head facts derivable with ``rule`` seeded at ``literal_index``.

        Goes through the engine's planned/compiled evaluators (same cache,
        same ``(rule, seed literal)`` key space as its own semi-naive
        rounds) instead of the interpreted join.  Safe here because DRed's
        delta path only runs on negation- and aggregate-free programs, so
        a compiled execution is pure — it derives facts without touching
        accumulator state.  Rules the lowering rejected (or ``plan=False``
        engines) keep the interpreted path.
        """
        engine = self.engine
        if engine.plan_enabled:
            compiled = engine._compiled_for(rule, literal_index)
            if compiled is not None:
                derived, _ = compiled.execute(seeds)
                return list(derived)  # the sink is reused; detach it
        return [
            fact
            for binding in engine._join(
                rule, list(rule.body), literal_index, seeds, trace=[]
            )
            for fact in engine._instantiate_head(rule, binding)
        ]

    def _derivable(self, fact: Fact) -> bool:
        """Is ``fact`` derivable by some rule from the current database?

        Unifies the fact against each head atom (variables bind, constants
        filter, complex terms — skolems, nulls, arithmetic — are validated
        post-hoc by comparing the fully instantiated head), then runs the
        rule body as a goal with the partial binding.
        """
        predicate, values = fact
        engine = self.engine
        for rule in engine.program.rules:
            for atom in rule.head:
                if atom.predicate != predicate or atom.arity != len(values):
                    continue
                binding: dict | None = {}
                for position, term in enumerate(atom.terms):
                    value = values[position]
                    if isinstance(term, Variable):
                        if term.name in binding and binding[term.name] != value:
                            binding = None
                            break
                        binding[term.name] = value
                    elif isinstance(term, Constant):
                        if term.value != value:
                            binding = None
                            break
                    # complex head terms (skolems / existential nulls /
                    # expressions) are regenerated by _instantiate_head
                    # below and compared there
                if binding is None:
                    continue
                # existential head variables are *generated*, never matched:
                # drop their tentative binding so _instantiate_head re-invents
                # the null from the frontier (deterministic skolemization
                # makes the comparison below exact)
                for name in engine._head_plan(rule)[0]:
                    binding.pop(name, None)
                literals = list(rule.body)
                order = list(range(len(literals)))
                for match in engine._match_from(
                    rule, literals, order, 0, binding, trace=[]
                ):
                    if fact in engine._instantiate_head(rule, match):
                        return True
        return False
