"""Compiled rule evaluators: planned rule bodies lowered to closure chains.

The interpreted join (:meth:`Engine._match_from`) pays, per tuple, an
``isinstance`` dispatch on the literal, a rebuild of the positional
pattern dict, a dict-copy per binding extension and a recursive generator
resume.  This module removes all four: a rule + plan is lowered *once*
into a chain of closures over a flat register file —

* variables become integer **slots** in a single mutable register list
  (which slots an atom binds, checks or probes is known statically from
  the planned order, so there is no per-tuple "is this variable bound?"
  question left);
* each atom step captures the **live index dict** (or row list) of its
  predicate at compile time — :class:`~repro.datalog.database.Database`
  guarantees those objects are updated in place across semi-naive rounds
  — and probes it with a precompiled key builder;
* negations become set-membership tests, comparisons/assignments become
  precompiled expression closures, aggregates call into the engine's
  shared monotone accumulator state;
* the head is emitted by precompiled tuple builders (labelled nulls for
  existentials included) appending straight to a reusable output list.

Compilation is best-effort: anything the lowering cannot prove safe
(an infeasible plan, complex terms over never-bound variables) raises
:class:`CompilationFallback` and the engine keeps the interpreted path
for that rule, with identical semantics.
"""

from __future__ import annotations

from typing import Any, Callable

from .atoms import Aggregate, Assignment, Atom, Comparison, Negation
from .builtins import _ARITHMETIC, _COMPARATORS, compare
from .errors import EvaluationError
from .planner import JoinPlan
from .terms import Constant, Expr, FunctionTerm, Null, SkolemTerm, Variable, skolem

ValueFn = Callable[[list], Any]
StepFn = Callable[[list], None]


class CompilationFallback(Exception):
    """The rule cannot be lowered; the engine must interpret it."""


class CompiledRule:
    """A rule body lowered to a closure chain over a register file."""

    __slots__ = ("plan", "counts", "replans", "_entry", "_seed_entry", "_regs",
                 "_sink", "_firings")

    def __init__(
        self,
        plan: JoinPlan,
        entry: StepFn | None,
        seed_entry: Callable[[tuple], None] | None,
        regs: list,
        sink: list,
        firings: list,
        counts: list | None,
    ):
        self.plan = plan
        self.counts = counts
        self.replans = 0
        self._entry = entry
        self._seed_entry = seed_entry
        self._regs = regs
        self._sink = sink
        self._firings = firings

    def execute(self, seed_facts: list[tuple] | None) -> tuple[list, int]:
        """Run the chain; returns (derived facts, firings).

        The returned fact list is reused across calls — the caller must
        consume it before the next ``execute``.
        """
        sink = self._sink
        sink.clear()
        self._firings[0] = 0
        if self._seed_entry is not None:
            seed_entry = self._seed_entry
            for values in seed_facts or ():
                seed_entry(values)
        else:
            self._entry(self._regs)
        return sink, self._firings[0]


# ----------------------------------------------------------------------
# term lowering
# ----------------------------------------------------------------------

def _compile_term(term, slots: dict[str, int], functions) -> ValueFn:
    """Lower a term to a closure over the register file.

    Raises KeyError when the term reads a variable with no slot (i.e.
    one that is unbound at this point of the plan) — callers turn that
    into deferral or :class:`CompilationFallback`.
    """
    if isinstance(term, Constant):
        value = term.value
        return lambda regs: value
    if isinstance(term, Variable):
        index = slots[term.name]
        return lambda regs: regs[index]
    if isinstance(term, Expr):
        if term.op == "neg":
            inner = _compile_term(term.args[0], slots, functions)
            return lambda regs: -inner(regs)
        lhs = _compile_term(term.args[0], slots, functions)
        rhs = _compile_term(term.args[1], slots, functions)
        op_fn = _ARITHMETIC[term.op]
        rendered = str(term)

        def arith(regs):
            try:
                return op_fn(lhs(regs), rhs(regs))
            except ZeroDivisionError:
                raise EvaluationError(f"division by zero in {rendered}") from None
            except TypeError as exc:
                raise EvaluationError(f"type error in {rendered}: {exc}") from None

        return arith
    if isinstance(term, SkolemTerm):
        arg_fns = tuple(_compile_term(arg, slots, functions) for arg in term.args)
        name = term.name
        return lambda regs: skolem(name, tuple(fn(regs) for fn in arg_fns))
    if isinstance(term, FunctionTerm):
        arg_fns = tuple(_compile_term(arg, slots, functions) for arg in term.args)
        name = term.name

        def call(regs):
            return functions.get(name)(*[fn(regs) for fn in arg_fns])

        return call
    raise CompilationFallback(f"cannot lower term of type {type(term).__name__}")


def _tuple_fn(fns: tuple[ValueFn, ...]) -> ValueFn:
    """A closure building a value tuple (specialised for small arities)."""
    if not fns:
        return lambda regs: ()
    if len(fns) == 1:
        f0, = fns
        return lambda regs: (f0(regs),)
    if len(fns) == 2:
        f0, f1 = fns
        return lambda regs: (f0(regs), f1(regs))
    if len(fns) == 3:
        f0, f1, f2 = fns
        return lambda regs: (f0(regs), f1(regs), f2(regs))
    if len(fns) == 4:
        f0, f1, f2, f3 = fns
        return lambda regs: (f0(regs), f1(regs), f2(regs), f3(regs))
    return lambda regs: tuple(fn(regs) for fn in fns)


# ----------------------------------------------------------------------
# step lowering
# ----------------------------------------------------------------------

def _counted(next_step: StepFn, counts: list, index: int) -> StepFn:
    def step(regs):
        counts[index] += 1
        next_step(regs)

    return step


def _make_atom_step(
    next_step: StepFn,
    arity: int,
    key_fn: ValueFn | None,
    index: dict | None,
    rows: list | None,
    fact_set: set | None,
    bind_pairs: tuple[tuple[int, int], ...],
    check_pairs: tuple[tuple[int, int], ...],
) -> StepFn:
    """One positive-atom join step.

    Exactly one source is set: ``fact_set`` (fully bound — existence
    probe), ``index`` (partial probe via the captured live index) or
    ``rows`` (no bound position — scan of the captured live row list).
    """
    if fact_set is not None:
        def membership(regs):
            if key_fn(regs) in fact_set:
                next_step(regs)

        return membership

    if index is not None:
        index_get = index.get
        if not check_pairs and len(bind_pairs) == 1:
            (s0, p0), = bind_pairs

            def probe1(regs):
                bucket = index_get(key_fn(regs))
                if bucket:
                    for values in bucket:
                        if len(values) == arity:
                            regs[s0] = values[p0]
                            next_step(regs)

            return probe1
        if not check_pairs and len(bind_pairs) == 2:
            (s0, p0), (s1, p1) = bind_pairs

            def probe2(regs):
                bucket = index_get(key_fn(regs))
                if bucket:
                    for values in bucket:
                        if len(values) == arity:
                            regs[s0] = values[p0]
                            regs[s1] = values[p1]
                            next_step(regs)

            return probe2

        def probe(regs):
            bucket = index_get(key_fn(regs))
            if bucket:
                for values in bucket:
                    if len(values) != arity:
                        continue
                    for slot, position in bind_pairs:
                        regs[slot] = values[position]
                    for slot, position in check_pairs:
                        if regs[slot] != values[position]:
                            break
                    else:
                        next_step(regs)

        return probe

    def scan(regs):
        for values in rows:
            if len(values) != arity:
                continue
            for slot, position in bind_pairs:
                regs[slot] = values[position]
            for slot, position in check_pairs:
                if regs[slot] != values[position]:
                    break
            else:
                next_step(regs)

    return scan


def _make_comparison_step(next_step: StepFn, op: str, lhs: ValueFn, rhs: ValueFn) -> StepFn:
    comparator = _COMPARATORS[op]

    def step(regs):
        left = lhs(regs)
        right = rhs(regs)
        try:
            satisfied = comparator(left, right)
        except TypeError:
            # exact legacy semantics for nulls / mixed-type operands
            satisfied = compare(op, left, right)
        if satisfied:
            next_step(regs)

    return step


class _Lowering:
    """Single-use context threading slots/bound-set through one rule."""

    def __init__(self, engine, rule, plan: JoinPlan, counting: bool):
        self.engine = engine
        self.rule = rule
        self.plan = plan
        self.slots: dict[str, int] = {}
        self.bound: set[str] = set()
        self.sink: list = []
        self.firings = [0]
        self.counting = counting
        self.counts: list | None = [0] * len(plan.steps) if counting else None
        # deferred seed complex checks: (term, stash slot), compiled last
        self.deferred: list[tuple[Any, int]] = []

    def slot_for(self, name: str) -> int:
        index = self.slots.get(name)
        if index is None:
            index = self.slots[name] = len(self.slots)
        return index

    # -- literal makers (forward pass; each returns maker(next) -> step) --

    def lower_atom(self, atom: Atom):
        engine = self.engine
        probe_fns: list[ValueFn] = []
        probe_positions: list[int] = []
        bind_pairs: list[tuple[int, int]] = []
        check_pairs: list[tuple[int, int]] = []
        fresh: dict[str, int] = {}
        for position, term in enumerate(atom.terms):
            if isinstance(term, Variable):
                if term.name in self.bound:
                    slot = self.slot_for(term.name)
                    probe_positions.append(position)
                    probe_fns.append(lambda regs, i=slot: regs[i])
                elif term.name in fresh:
                    check_pairs.append((fresh[term.name], position))
                else:
                    slot = self.slot_for(term.name)
                    fresh[term.name] = slot
                    bind_pairs.append((slot, position))
            elif isinstance(term, Constant):
                probe_positions.append(position)
                probe_fns.append(lambda regs, v=term.value: v)
            else:
                try:
                    fn = _compile_term(term, self.slots, engine.functions)
                except KeyError:
                    raise CompilationFallback(
                        f"atom {atom} has a complex term over unbound variables"
                    ) from None
                probe_positions.append(position)
                probe_fns.append(fn)
        self.bound.update(fresh)

        arity = atom.arity
        key_fn = _tuple_fn(tuple(probe_fns))
        if len(probe_positions) == arity and not bind_pairs and not check_pairs:
            fact_set = engine.database.live_set(atom.predicate)
            index = rows = None
        elif probe_positions:
            fact_set = rows = None
            index = engine.database.index_for(atom.predicate, tuple(probe_positions))
        else:
            fact_set = index = None
            rows = engine.database.live_rows(atom.predicate)
        bind = tuple(bind_pairs)
        check = tuple(check_pairs)
        return lambda next_step: _make_atom_step(
            next_step, arity, key_fn, index, rows, fact_set, bind, check
        )

    def lower_negation(self, negation: Negation):
        atom = negation.atom
        fns = []
        for term in atom.terms:
            try:
                fns.append(_compile_term(term, self.slots, self.engine.functions))
            except KeyError:
                raise CompilationFallback(
                    f"negated atom {atom} reads an unbound variable"
                ) from None
        key_fn = _tuple_fn(tuple(fns)) if fns else (lambda regs: ())
        fact_set = self.engine.database.live_set(atom.predicate)

        def maker(next_step):
            def step(regs):
                if key_fn(regs) not in fact_set:
                    next_step(regs)

            return step

        return maker

    def lower_comparison(self, comparison: Comparison):
        try:
            lhs = _compile_term(comparison.lhs, self.slots, self.engine.functions)
            rhs = _compile_term(comparison.rhs, self.slots, self.engine.functions)
        except KeyError:
            raise CompilationFallback(
                f"comparison {comparison} reads an unbound variable"
            ) from None
        op = comparison.op
        return lambda next_step: _make_comparison_step(next_step, op, lhs, rhs)

    def lower_assignment(self, assignment: Assignment):
        try:
            expr = _compile_term(assignment.expression, self.slots, self.engine.functions)
        except KeyError:
            raise CompilationFallback(
                f"assignment {assignment} reads an unbound variable"
            ) from None
        name = assignment.variable.name
        if name in self.bound:
            slot = self.slots[name]

            def check_maker(next_step):
                def step(regs):
                    if regs[slot] == expr(regs):
                        next_step(regs)

                return step

            return check_maker
        slot = self.slot_for(name)
        self.bound.add(name)

        def bind_maker(next_step):
            def step(regs):
                regs[slot] = expr(regs)
                next_step(regs)

            return step

        return bind_maker

    def lower_aggregate(self, aggregate: Aggregate):
        engine = self.engine
        rule = self.rule
        try:
            value_fn = _compile_term(aggregate.expression, self.slots, engine.functions)
            group_slots = tuple(
                self.slots[name] for name in engine._aggregate_group_vars(rule, aggregate)
            )
            if aggregate.contributors:
                contrib_fn = _tuple_fn(
                    tuple(
                        (lambda regs, i=self.slots[v.name]: regs[i])
                        for v in aggregate.contributors
                    )
                )
            else:
                # legacy contributor identity: the full binding, as sorted
                # (name, value) pairs — the bound set here is statically known
                pairs = tuple(
                    (name, self.slots[name]) for name in sorted(self.bound)
                )
                contrib_fn = lambda regs: tuple(  # noqa: E731
                    (name, regs[i]) for name, i in pairs
                )
        except KeyError:
            raise CompilationFallback(
                f"aggregate {aggregate} reads an unbound variable"
            ) from None
        if group_slots:
            group_key_fn = _tuple_fn(
                tuple((lambda regs, i=slot: regs[i]) for slot in group_slots)
            )
        else:
            group_key_fn = lambda regs: ()  # noqa: E731
        skippable = engine._aggregate_skippable(rule, aggregate)
        result_slot = self.slot_for(aggregate.variable.name)
        self.bound.add(aggregate.variable.name)
        states = engine._aggregate_states
        rule_id, aggregate_id = id(rule), id(aggregate)
        func = aggregate.func

        def maker(next_step):
            from .engine import _AggregateState

            def step(regs):
                key = (rule_id, aggregate_id, group_key_fn(regs))
                state = states.get(key)
                if state is None:
                    state = _AggregateState(func)
                    states[key] = state
                total, improved = state.update(contrib_fn(regs), value_fn(regs))
                if improved or not skippable:
                    regs[result_slot] = total
                    next_step(regs)

            return step

        return maker

    # -- seed entry -----------------------------------------------------

    def lower_seed(self, atom: Atom):
        """Classify the seed atom; returns a factory(first_step) -> entry.

        Seed facts arrive as raw delta tuples (no index pattern), so
        constants and intra-atom repeats are checked here; complex terms
        evaluable from the seed's own variables are checked immediately,
        the rest stash the observed value for the final step.
        """
        bind_pairs: list[tuple[int, int]] = []
        const_checks: list[tuple[int, Any]] = []
        repeat_checks: list[tuple[int, int]] = []
        complex_positions: list[tuple[Any, int]] = []
        fresh: dict[str, int] = {}
        for position, term in enumerate(atom.terms):
            if isinstance(term, Variable):
                if term.name in fresh:
                    repeat_checks.append((fresh[term.name], position))
                else:
                    slot = self.slot_for(term.name)
                    fresh[term.name] = slot
                    bind_pairs.append((slot, position))
            elif isinstance(term, Constant):
                const_checks.append((position, term.value))
            else:
                complex_positions.append((term, position))
        self.bound.update(fresh)

        immediate: list[tuple[ValueFn, int]] = []
        for term, position in complex_positions:
            try:
                fn = _compile_term(term, self.slots, self.engine.functions)
            except KeyError:
                stash = self.slot_for(f"\x00defer:{position}")
                bind_pairs.append((stash, position))
                self.deferred.append((term, stash))
            else:
                immediate.append((fn, position))

        arity = atom.arity
        binds = tuple(bind_pairs)
        consts = tuple(const_checks)
        repeats = tuple(repeat_checks)
        checks = tuple(immediate)

        def factory(first_step, regs):
            def entry(values):
                if len(values) != arity:
                    return
                for position, expected in consts:
                    if values[position] != expected:
                        return
                for slot, position in binds:
                    regs[slot] = values[position]
                for slot, position in repeats:
                    if regs[slot] != values[position]:
                        return
                for fn, position in checks:
                    if fn(regs) != values[position]:
                        return
                first_step(regs)

            return entry

        return factory

    # -- final step -----------------------------------------------------

    def lower_final(self) -> StepFn:
        engine = self.engine
        rule = self.rule
        existential, frontier, rule_id = engine._head_plan(rule)
        try:
            frontier_slots = tuple(self.slots[name] for name in frontier)
        except KeyError:
            raise CompilationFallback(
                "frontier variable unbound (unsafe head)"
            ) from None
        null_specs = tuple(
            (f"null:{rule_id}:{name}", self.slot_for(name)) for name in existential
        )
        deferred_checks = []
        for term, stash in self.deferred:
            try:
                fn = _compile_term(term, self.slots, engine.functions)
            except KeyError:
                raise CompilationFallback(
                    f"seed atom complex term {term} has unbound variables"
                ) from None
            deferred_checks.append((fn, stash))
        deferred_checks = tuple(deferred_checks)
        head_builders = []
        for atom in rule.head:
            try:
                fns = tuple(
                    _compile_term(term, self.slots, engine.functions)
                    for term in atom.terms
                )
            except KeyError:
                raise CompilationFallback(
                    f"head atom {atom} reads an unbound variable"
                ) from None
            head_builders.append((atom.predicate, _tuple_fn(fns)))
        head_builders = tuple(head_builders)
        sink_append = self.sink.append
        firings = self.firings

        def final(regs):
            for fn, stash in deferred_checks:
                if fn(regs) != regs[stash]:
                    return
            firings[0] += 1
            if null_specs:
                frontier_values = tuple(regs[i] for i in frontier_slots)
                for label, slot in null_specs:
                    regs[slot] = Null(skolem(label, frontier_values))
            for predicate, build in head_builders:
                sink_append((predicate, build(regs)))

        return final


def compile_rule(engine, rule, plan: JoinPlan, counting: bool = False) -> CompiledRule:
    """Lower ``rule`` under ``plan`` into a :class:`CompiledRule`.

    ``counting`` additionally threads per-step row counters through the
    chain (used by the tracer's EXPLAIN output); leave it off on the hot
    path.  Raises :class:`CompilationFallback` when the rule cannot be
    lowered soundly.
    """
    if not plan.feasible:
        raise CompilationFallback("plan fell back to textual order")
    lowering = _Lowering(engine, rule, plan, counting)
    literals = rule.body

    seed_factory = None
    if plan.seed_index is not None:
        seed_factory = lowering.lower_seed(literals[plan.seed_index])

    makers = []
    for step_number, index in enumerate(plan.order):
        literal = literals[index]
        if isinstance(literal, Atom):
            maker = lowering.lower_atom(literal)
        elif isinstance(literal, Negation):
            maker = lowering.lower_negation(literal)
        elif isinstance(literal, Comparison):
            maker = lowering.lower_comparison(literal)
        elif isinstance(literal, Assignment):
            maker = lowering.lower_assignment(literal)
        elif isinstance(literal, Aggregate):
            maker = lowering.lower_aggregate(literal)
        else:
            raise CompilationFallback(f"unsupported body literal {literal!r}")
        makers.append((step_number, maker))

    step = lowering.lower_final()
    for step_number, maker in reversed(makers):
        if lowering.counting:
            step = _counted(step, lowering.counts, step_number)
        step = maker(step)

    regs = [None] * len(lowering.slots)
    if seed_factory is not None:
        entry = None
        seed_entry = seed_factory(step, regs)
    else:
        entry = step
        seed_entry = None
    return CompiledRule(
        plan, entry, seed_entry, regs, lowering.sink, lowering.firings, lowering.counts
    )
