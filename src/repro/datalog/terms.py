"""Terms of the Datalog± language: constants, variables, nulls and expressions.

Inside *facts* the engine stores plain Python values (strings, numbers,
booleans, tuples and :class:`Null` instances) for speed.  The classes here are
used inside *rules*: a rule body/head mentions :class:`Variable`,
:class:`Constant`, arithmetic :class:`Expr` trees, Skolem-function
applications (:class:`SkolemTerm`) and external-function calls
(:class:`FunctionTerm`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Iterator

#: Python types a fact column may hold (besides Null).
Value = Any


class Null:
    """A labelled null, invented by the chase for existential variables.

    Nulls compare equal iff their labels are equal, which makes the
    skolemized chase deterministic: re-deriving the same existential head
    for the same frontier binding yields the *same* null, so set semantics
    deduplicates the fact and the chase terminates.
    """

    __slots__ = ("label", "_hash")

    def __init__(self, label: str):
        self.label = label
        self._hash = hash(("__null__", label))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Null) and other.label == self.label

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Null({self.label})"

    def __str__(self) -> str:
        return f"⊥{self.label}"


def is_null(value: object) -> bool:
    """Return True when ``value`` is a labelled null."""
    return isinstance(value, Null)


@dataclass(frozen=True, slots=True)
class Variable:
    """A rule variable. By convention names start with an uppercase letter."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Constant:
    """A constant term wrapping a plain Python value."""

    value: Value

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f'"{self.value}"'
        return str(self.value)


@dataclass(frozen=True, slots=True)
class Expr:
    """An arithmetic/comparison expression tree over terms.

    ``op`` is one of ``+ - * / %`` (binary) or ``neg`` (unary).
    """

    op: str
    args: tuple["Term", ...]

    def __str__(self) -> str:
        if self.op == "neg":
            return f"-({self.args[0]})"
        return f"({self.args[0]} {self.op} {self.args[1]})"


@dataclass(frozen=True, slots=True)
class SkolemTerm:
    """Application of a Skolem function, written ``#name(arg, ...)``.

    Skolem functions are deterministic, injective and have pairwise
    disjoint ranges — see Section 4 of the paper.  We realise them by
    hashing the function name together with the argument values, so two
    different functions (or two different argument tuples) can never
    produce the same identifier.
    """

    name: str
    args: tuple["Term", ...]

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"#{self.name}({inner})"


@dataclass(frozen=True, slots=True)
class FunctionTerm:
    """Application of a registered external function, written ``$name(arg, ...)``.

    External functions are how the paper plugs clustering, embeddings and
    probabilistic models into the logic (``#GraphEmbedClust``,
    ``#GenerateBlocks``, ``#LinkProbability``).
    """

    name: str
    args: tuple["Term", ...]

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"${self.name}({inner})"


Term = Variable | Constant | Expr | SkolemTerm | FunctionTerm


def skolem(name: str, values: tuple[Value, ...]) -> str:
    """Compute the value of Skolem function ``name`` on ``values``.

    Returns an opaque string identifier. Determinism comes from hashing;
    injectivity and disjoint ranges come from including the function name
    and an unambiguous serialisation of the arguments in the digest.
    """
    hasher = hashlib.blake2b(digest_size=12)
    hasher.update(name.encode("utf-8"))
    for value in values:
        hasher.update(b"\x00")
        hasher.update(_serialise(value))
    return f"sk:{name}:{hasher.hexdigest()}"


def _serialise(value: Value) -> bytes:
    """Serialise a fact value unambiguously for Skolem hashing."""
    if isinstance(value, Null):
        return b"N" + value.label.encode("utf-8")
    if isinstance(value, bool):
        return b"B1" if value else b"B0"
    if isinstance(value, int):
        return b"I" + str(value).encode("ascii")
    if isinstance(value, float):
        return b"F" + repr(value).encode("ascii")
    if isinstance(value, str):
        return b"S" + value.encode("utf-8")
    if isinstance(value, tuple):
        return b"T(" + b",".join(_serialise(v) for v in value) + b")"
    return b"O" + repr(value).encode("utf-8")


def variables_of(term: Term) -> Iterator[Variable]:
    """Yield every variable occurring in ``term`` (depth-first)."""
    if isinstance(term, Variable):
        yield term
    elif isinstance(term, (Expr, SkolemTerm, FunctionTerm)):
        for arg in term.args:
            yield from variables_of(arg)
