"""Atoms and body literals of Datalog± rules."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from .terms import Term, Variable, variables_of

#: Comparison operators allowed in rule bodies.
COMPARISON_OPS = ("==", "!=", "<=", ">=", "<", ">")

#: Monotonic aggregation functions supported by the engine.
AGGREGATE_FUNCS = ("msum", "mprod", "mmin", "mmax", "mcount")


@dataclass(frozen=True, slots=True)
class Atom:
    """A predicate applied to terms, e.g. ``own(X, Y, W)``."""

    predicate: str
    terms: tuple[Term, ...]

    @property
    def arity(self) -> int:
        return len(self.terms)

    def variables(self) -> Iterator[Variable]:
        for term in self.terms:
            yield from variables_of(term)

    def __str__(self) -> str:
        inner = ", ".join(str(t) for t in self.terms)
        return f"{self.predicate}({inner})"


@dataclass(frozen=True, slots=True)
class Negation:
    """A negated body atom, ``not p(X, Y)``. Requires stratification."""

    atom: Atom

    def variables(self) -> Iterator[Variable]:
        yield from self.atom.variables()

    def __str__(self) -> str:
        return f"not {self.atom}"


@dataclass(frozen=True, slots=True)
class Comparison:
    """A comparison between two expressions, e.g. ``W >= 0.5``."""

    op: str
    lhs: Term
    rhs: Term

    def variables(self) -> Iterator[Variable]:
        yield from variables_of(self.lhs)
        yield from variables_of(self.rhs)

    def __str__(self) -> str:
        return f"{self.lhs} {self.op} {self.rhs}"


@dataclass(frozen=True, slots=True)
class Assignment:
    """Binds a fresh variable to the value of an expression.

    Written ``Z = #sk(Name)`` or ``H = $hash(F1, F2)`` or ``T = W1 * W2``.
    The right-hand side may reference Skolem functions, external functions
    and arithmetic over already-bound variables.
    """

    variable: Variable
    expression: Term

    def variables(self) -> Iterator[Variable]:
        """Variables *used* by the assignment (not the one it binds)."""
        yield from variables_of(self.expression)

    def __str__(self) -> str:
        return f"{self.variable} = {self.expression}"


@dataclass(frozen=True, slots=True)
class Aggregate:
    """A monotonic aggregation, e.g. ``T = msum(W, <Z>)``.

    ``func`` is one of :data:`AGGREGATE_FUNCS`.  ``expression`` is the
    per-contribution value; ``contributors`` are the variables that
    identify a contribution (each distinct contributor tuple contributes
    exactly once per group).  The *group* is implicitly the binding of all
    head variables other than ``variable`` — matching Vadalog's monotonic
    aggregation, where subsequent activations of the function yield
    monotonically updated values and set semantics keeps every
    intermediate fact (the final aggregate is the max/min of them).
    """

    variable: Variable
    func: str
    expression: Term
    contributors: tuple[Variable, ...] = field(default_factory=tuple)

    def variables(self) -> Iterator[Variable]:
        """Variables used by the aggregate (not the result variable)."""
        yield from variables_of(self.expression)
        yield from self.contributors

    def __str__(self) -> str:
        contributor_list = ", ".join(v.name for v in self.contributors)
        return f"{self.variable} = {self.func}({self.expression}, <{contributor_list}>)"


#: Anything that may appear in a rule body.
BodyLiteral = Atom | Negation | Comparison | Assignment | Aggregate


def make_atom(predicate: str, *terms: Term) -> Atom:
    """Convenience constructor used by tests and programmatic rule building."""
    return Atom(predicate, tuple(terms))
