"""Vectorized batch execution of planned rule bodies over code columns.

The compiled evaluators (:mod:`repro.datalog.compiled`) removed the
per-tuple interpretation overhead but still run one Python closure chain
per binding.  This module evaluates a planned rule whole-relation-at-a-
time instead: the binding set is a struct-of-arrays table (one int64
code column or float64 value column per variable slot), each planned
step is a handful of numpy calls over those columns, and a semi-naive
round costs O(numpy kernels) instead of O(firings) Python frames.

Execution model
---------------

* **atoms** are order-preserving hash joins: the relation (build side)
  is stable-argsorted by its packed probe-key columns once per version
  (cached in :class:`~repro.datalog.columns.ColumnStore`), the current
  binding table probes it with ``searchsorted``, and the grouped-arange
  expansion emits, for every binding row in order, its matching relation
  rows in insertion order — exactly the compiled path's nested-loop
  order, so the derived fact sequence is identical;
* **negations / fully-bound atoms** are semi-join membership masks over
  the same sorted keys;
* **comparisons / assignments** are boolean masks / new columns, with
  per-execute type checks (see *Numeric safety* below) guaranteeing the
  masks equal what Python operators would have produced row by row;
* **everything else cuts to a per-row tail**: at the first plan step the
  batch backend does not cover (monotone aggregates, complex/Skolem
  terms, external functions, existential heads), the surviving rows are
  decoded back to Python values and pushed through a closure chain built
  by the *compiled* lowering for the remaining steps.  The tail shares
  the engine's aggregate-state dicts, so aggregate totals fold in the
  identical order with identical float arithmetic — bit-identity needs
  no separate proof for the hard part.

Identity discipline
-------------------

Values are interned with Python ``==``/``hash`` semantics (so ``1`` and
``1.0`` share a code, exactly as the tuple-keyed dict indexes of the
compiled path collapse them), and every shortcut that could diverge from
Python scalar semantics is guarded:

* code equality is corrected for NaN (a NaN value equals nothing, not
  even itself, while its code does);
* ordering comparisons require every operand value to be *safely*
  numeric (floats, bools, ints within 2**53); otherwise the rule takes
  a :class:`VectorRuntimeFallback` and the engine permanently reverts it
  to the compiled path — which then either handles it (big ints) or
  raises the documented error (mixed-type ordering);
* arithmetic requires strictly-float operands so float64 kernels match
  Python float arithmetic bit for bit; division additionally checks for
  zero divisors (Python raises, numpy would emit inf);
* fallbacks are only ever raised while execution is still *pure* — the
  vectorized prefix mutates nothing but append-only caches — so the
  engine can re-run the rule on the compiled path without double
  counting.

Deduplicating head emission keeps the output small: rows are unique-d on
the head-variable columns (first occurrence wins, preserving order — a
dropped row's facts were exact duplicates the database would have
rejected anyway), so a rule with 140k firings but 500 distinct heads
decodes 500 tuples, not 140k.
"""

from __future__ import annotations

from typing import Any, Callable

from .atoms import Aggregate, Assignment, Atom, Comparison, Negation
from .columns import MAX_CODES, NUMPY_AVAILABLE
from .compiled import CompilationFallback, _Lowering
from .planner import JoinPlan
from .terms import Constant, Expr, Variable

if NUMPY_AVAILABLE:  # pragma: no branch
    import numpy as np

#: Hard cap on rows produced by a single join expansion; beyond it the
#: rule falls back to the compiled path rather than risk an allocation
#: hundreds of times larger than the final result.
MAX_EXPANSION = 1 << 25


class VectorizationFallback(Exception):
    """The rule cannot be lowered to the batch backend (structural)."""


class VectorRuntimeFallback(Exception):
    """A per-execute safety check failed; the engine must permanently
    revert this rule to the compiled path.  Only ever raised while the
    execution is still pure (no database/aggregate state touched)."""


class _Run:
    """The binding table: one column per slot, ``n`` rows."""

    __slots__ = ("n", "cols")

    def __init__(self, n: int, cols: list):
        self.n = n
        self.cols = cols

    def col(self, slot: int):
        return self.cols[slot]

    def set_col(self, slot: int, values) -> None:
        cols = self.cols
        while len(cols) <= slot:
            cols.append(None)
        cols[slot] = values

    def gather(self, take) -> "_Run":
        """Rows at positions ``take`` (any numpy index), in that order."""
        cols = [None if c is None else c[take] for c in self.cols]
        return _Run(int(len(take)), cols)

    def filter(self, mask) -> "_Run":
        cols = [None if c is None else c[mask] for c in self.cols]
        return _Run(int(mask.sum()), cols)


# ----------------------------------------------------------------------
# key packing helpers
# ----------------------------------------------------------------------

def _dense(col):
    """Map an int64 column to dense ids < len(col) (order-irrelevant)."""
    _, inverse = np.unique(col, return_inverse=True)
    return inverse.astype(np.int64, copy=False)


def _pack_pair(a, b):
    return (a << 32) | b


def _float_codes(interner, col):
    """Codes of a float64 column via the shared interner.

    Unique values are looked up through the interner dict, so Python
    equality decides the match (``2.0`` finds the code of an interned
    ``2``).  Unseen values — including every NaN, which can equal no
    interned value — map to -1 (guaranteed miss).
    """
    uniques, inverse = np.unique(col, return_inverse=True)
    lookup = interner.lookup
    codes = np.fromiter(
        (lookup(value) for value in uniques.tolist()),
        dtype=np.int64,
        count=len(uniques),
    )
    return codes[inverse.reshape(-1)]


# ----------------------------------------------------------------------
# lowering
# ----------------------------------------------------------------------

class _VecLowering:
    """Single-use context lowering one planned rule to vector steps."""

    def __init__(self, engine, rule, plan: JoinPlan):
        self.engine = engine
        self.rule = rule
        self.plan = plan
        self.store = engine.database.column_store()
        self.interner = self.store.interner
        self.slots: dict[str, int] = {}
        #: per-slot column kind, parallel to ``slots``: "code" | "float"
        self.kinds: list[str] = []
        self.bound: set[str] = set()
        self.steps: list[Callable[[_Run], _Run]] = []
        self.joins_lowered = 0

    def slot_for(self, name: str, kind: str) -> int:
        index = self.slots.get(name)
        if index is None:
            index = self.slots[name] = len(self.kinds)
            self.kinds.append(kind)
        return index

    # -- value producers ------------------------------------------------

    def lower_value(self, term):
        """Lower a term to ("code"|"float", fn(run) -> column) or
        ("const", value).  Raises VectorizationFallback on Skolem terms,
        function calls and anything else only the per-row paths cover."""
        if isinstance(term, Constant):
            return ("const", term.value)
        if isinstance(term, Variable):
            slot = self.slots.get(term.name)
            if slot is None:
                raise VectorizationFallback(f"variable {term.name} unbound")
            kind = self.kinds[slot]
            return (kind, lambda run, i=slot: run.col(i))
        if isinstance(term, Expr):
            return ("float", self._lower_arithmetic(term))
        raise VectorizationFallback(
            f"term {term} needs per-row evaluation"
        )

    def _float_operand(self, term):
        """fn(run) -> float64 column-or-scalar, guaranteed to match the
        Python float arithmetic of the compiled path exactly."""
        kind, payload = self.lower_value(term)
        if kind == "float":
            return payload
        if kind == "const":
            value = payload
            if isinstance(value, float):
                return lambda run: value
            if isinstance(value, (int, bool)) and -(2**53) <= value <= 2**53:
                # Python promotes the int exactly in mixed arithmetic
                as_float = float(value)
                return lambda run: as_float
            raise VectorizationFallback(
                f"non-float constant {value!r} in arithmetic"
            )
        # code column: every value must be a strict float, checked per
        # execute — int operands would make Python produce ints
        interner = self.interner

        def producer(run, codes_fn=payload):
            codes = codes_fn(run)
            floats, is_float, _, _ = interner.tables()
            if not is_float[codes].all():
                raise VectorRuntimeFallback("non-float operand in arithmetic")
            return floats[codes]

        return producer

    def _lower_arithmetic(self, expr: Expr):
        if expr.op == "neg":
            inner = self._float_operand(expr.args[0])
            return lambda run: -inner(run)
        if expr.op == "%":
            raise VectorizationFallback("modulo needs per-row evaluation")
        lhs = self._float_operand(expr.args[0])
        rhs = self._float_operand(expr.args[1])
        op = expr.op
        if op == "+":
            return lambda run: lhs(run) + rhs(run)
        if op == "-":
            return lambda run: lhs(run) - rhs(run)
        if op == "*":
            return lambda run: lhs(run) * rhs(run)
        if op == "/":
            def divide(run):
                denominator = rhs(run)
                if isinstance(denominator, float):
                    if denominator == 0.0:
                        raise VectorRuntimeFallback("division by zero")
                elif (denominator == 0.0).any():
                    raise VectorRuntimeFallback("division by zero")
                return lhs(run) / denominator

            return divide
        raise VectorizationFallback(f"operator {op!r} not vectorized")

    # -- seed -----------------------------------------------------------

    def lower_seed(self, atom: Atom):
        """Seed loader: delta tuples -> initial run, mirroring the
        compiled seed entry (arity filter, constant and repeat checks in
        plain Python on the raw tuples)."""
        bind_pairs: list[tuple[int, int]] = []
        const_checks: list[tuple[int, Any]] = []
        repeat_checks: list[tuple[int, int]] = []
        fresh: dict[str, int] = {}
        for position, term in enumerate(atom.terms):
            if isinstance(term, Variable):
                if term.name in fresh:
                    repeat_checks.append((fresh[term.name], position))
                else:
                    slot = self.slot_for(term.name, "code")
                    fresh[term.name] = slot
                    bind_pairs.append((slot, position))
            elif isinstance(term, Constant):
                const_checks.append((position, term.value))
            else:
                raise VectorizationFallback(
                    f"seed atom {atom} has a complex term"
                )
        self.bound.update(fresh)
        arity = atom.arity
        interner = self.interner
        n_slots_at_seed = len(self.kinds)

        def entry(seed_facts) -> _Run:
            intern = interner.intern
            columns: list[list[int]] = [[] for _ in bind_pairs]
            rows = 0
            for values in seed_facts or ():
                if len(values) != arity:
                    continue
                ok = True
                for position, expected in const_checks:
                    if values[position] != expected:
                        ok = False
                        break
                if not ok:
                    continue
                for first, position in repeat_checks:
                    if values[first] != values[position]:
                        ok = False
                        break
                if not ok:
                    continue
                for j, (_, position) in enumerate(bind_pairs):
                    columns[j].append(intern(values[position]))
                rows += 1
            cols: list = [None] * n_slots_at_seed
            for j, (slot, _) in enumerate(bind_pairs):
                cols[slot] = np.asarray(columns[j], dtype=np.int64)
            return _Run(rows, cols)

        return entry

    # -- atoms ----------------------------------------------------------

    def lower_atom(self, atom: Atom):
        """One positive-atom step: membership, probe join, or scan."""
        probe_specs: list[tuple[str, Any]] = []   # ("slot", i) | ("const", v)
        probe_positions: list[int] = []
        bind_pairs: list[tuple[int, int]] = []
        check_pairs: list[tuple[int, int]] = []
        fresh: dict[str, int] = {}
        for position, term in enumerate(atom.terms):
            if isinstance(term, Variable):
                if term.name in self.bound:
                    probe_positions.append(position)
                    probe_specs.append(("slot", self.slots[term.name]))
                elif term.name in fresh:
                    check_pairs.append((fresh[term.name], position))
                else:
                    slot = self.slot_for(term.name, "code")
                    fresh[term.name] = slot
                    bind_pairs.append((slot, position))
            elif isinstance(term, Constant):
                probe_positions.append(position)
                probe_specs.append(("const", term.value))
            else:
                raise VectorizationFallback(
                    f"atom {atom} has a complex term"
                )
        self.bound.update(fresh)
        self.joins_lowered += 1

        predicate = atom.predicate
        arity = atom.arity
        store = self.store
        interner = self.interner
        positions = tuple(probe_positions)
        membership = len(positions) == arity and not bind_pairs and not check_pairs
        kinds = self.kinds

        def probe_columns(run):
            """(list of int64 code columns, valid mask or None)."""
            columns = []
            valid = None
            for kind, payload in probe_specs:
                if kind == "slot":
                    col = run.col(payload)
                    if kinds[payload] == "float":
                        col = _float_codes(interner, col)
                else:
                    code = interner.lookup(payload)
                    col = np.full(run.n, code, dtype=np.int64)
                miss = col == -1
                if miss.any():
                    valid = miss if valid is None else (valid | miss)
                    col = np.where(miss, 0, col)
                columns.append(col)
            return columns, (None if valid is None else ~valid)

        def counts_for(run):
            """Per-row match counts + (order, left) into the build side."""
            block = store.block(predicate, arity)
            if block is None or block.size == 0:
                return None
            if not positions:  # zero-arity atom: the unit key matches all
                counts = np.full(run.n, block.size, dtype=np.int64)
                return counts, np.arange(block.size), np.zeros(run.n, dtype=np.int64)
            columns, valid = probe_columns(run)
            if len(positions) <= 2:
                built = store.sorted_keys(predicate, arity, positions)
                order, sorted_keys = built
                if len(columns) == 1:
                    probe = columns[0]
                else:
                    probe = _pack_pair(columns[0], columns[1])
            else:
                build_cols = [block.column(p) for p in positions]
                build_packed = build_cols[0]
                probe = columns[0]
                for j in range(1, len(positions)):
                    merged = np.concatenate([build_packed, probe])
                    dense = _dense(merged)
                    build_packed = _pack_pair(
                        dense[: len(build_packed)], build_cols[j]
                    )
                    probe = _pack_pair(dense[len(build_cols[0]) :], columns[j])
                order = np.argsort(build_packed, kind="stable")
                sorted_keys = build_packed[order]
            left = np.searchsorted(sorted_keys, probe, side="left")
            right = np.searchsorted(sorted_keys, probe, side="right")
            counts = right - left
            if valid is not None:
                counts[~valid] = 0
            return counts, order, left

        if membership:
            def membership_step(run: _Run) -> _Run:
                found = counts_for(run)
                if found is None:
                    return _Run(0, run.cols)
                counts, _, _ = found
                return run.filter(counts > 0)

            return membership_step

        if positions:
            def probe_step(run: _Run) -> _Run:
                found = counts_for(run)
                if found is None:
                    return _Run(0, run.cols)
                counts, order, left = found
                total = int(counts.sum())
                if total == 0:
                    return _Run(0, run.cols)
                if total > MAX_EXPANSION:
                    raise VectorRuntimeFallback("join expansion too large")
                probe_rep = np.repeat(np.arange(run.n), counts)
                offsets = np.cumsum(counts) - counts
                within = np.arange(total) - np.repeat(offsets, counts)
                rows = order[np.repeat(left, counts) + within]
                out = run.gather(probe_rep)
                block = store.block(predicate, arity)
                for slot, position in bind_pairs:
                    out.set_col(slot, block.column(position)[rows])
                return _apply_checks(out, block, rows, check_pairs, interner)

            return probe_step

        def scan_step(run: _Run) -> _Run:
            block = store.block(predicate, arity)
            size = 0 if block is None else block.size
            if size == 0 or run.n == 0:
                return _Run(0, run.cols)
            total = run.n * size
            if total > MAX_EXPANSION:
                raise VectorRuntimeFallback("scan expansion too large")
            probe_rep = np.repeat(np.arange(run.n), size)
            rows = np.tile(np.arange(size), run.n)
            out = run.gather(probe_rep)
            for slot, position in bind_pairs:
                out.set_col(slot, block.column(position)[rows])
            return _apply_checks(out, block, rows, check_pairs, interner)

        return scan_step

    def lower_negation(self, negation: Negation):
        """Fully-bound anti-join: drop rows whose key is in the relation."""
        atom = negation.atom
        probe_specs: list[tuple[str, Any]] = []
        for term in atom.terms:
            if isinstance(term, Variable):
                slot = self.slots.get(term.name)
                if slot is None:
                    raise VectorizationFallback(
                        f"negated atom {atom} reads an unbound variable"
                    )
                probe_specs.append(("slot", slot))
            elif isinstance(term, Constant):
                probe_specs.append(("const", term.value))
            else:
                raise VectorizationFallback(
                    f"negated atom {atom} has a complex term"
                )
        predicate = atom.predicate
        arity = atom.arity
        positions = tuple(range(arity))
        store = self.store
        interner = self.interner
        kinds = self.kinds

        def negation_step(run: _Run) -> _Run:
            block = store.block(predicate, arity)
            if block is None or block.size == 0:
                return run
            if not positions:  # zero-arity: the relation holds, drop all
                return _Run(0, run.cols)
            columns = []
            valid = None
            for kind, payload in probe_specs:
                if kind == "slot":
                    col = run.col(payload)
                    if kinds[payload] == "float":
                        col = _float_codes(interner, col)
                else:
                    code = interner.lookup(payload)
                    col = np.full(run.n, code, dtype=np.int64)
                miss = col == -1
                if miss.any():
                    valid = miss if valid is None else (valid | miss)
                    col = np.where(miss, 0, col)
                columns.append(col)
            if len(positions) <= 2:
                order, sorted_keys = store.sorted_keys(predicate, arity, positions)
                probe = columns[0] if len(columns) == 1 else _pack_pair(
                    columns[0], columns[1]
                )
            else:
                build_cols = [block.column(p) for p in positions]
                build_packed = build_cols[0]
                probe = columns[0]
                for j in range(1, arity):
                    merged = np.concatenate([build_packed, probe])
                    dense = _dense(merged)
                    build_packed = _pack_pair(
                        dense[: len(build_packed)], build_cols[j]
                    )
                    probe = _pack_pair(dense[len(build_cols[0]) :], columns[j])
                sorted_keys = np.sort(build_packed)
            left = np.searchsorted(sorted_keys, probe, side="left")
            right = np.searchsorted(sorted_keys, probe, side="right")
            found = right > left
            if valid is not None:
                found &= valid  # a missed lookup can match no fact
            return run.filter(~found)

        return negation_step

    # -- comparisons / assignments --------------------------------------

    def lower_comparison(self, comparison: Comparison):
        mask_fn = self._comparison_mask(
            comparison.op, comparison.lhs, comparison.rhs
        )
        return lambda run: _mask_filter(run, mask_fn(run))

    def _comparison_mask(self, op: str, lhs_term, rhs_term):
        """fn(run) -> bool mask replicating Python comparison semantics."""
        lhs = self.lower_value(lhs_term)
        rhs = self.lower_value(rhs_term)
        interner = self.interner

        if op in ("==", "!="):
            if lhs[0] == "code" and rhs[0] == "code":
                lfn, rfn = lhs[1], rhs[1]

                def code_equality(run):
                    a = lfn(run)
                    b = rfn(run)
                    _, _, _, is_nan = interner.tables()
                    if op == "==":
                        return (a == b) & ~is_nan[a]
                    return (a != b) | is_nan[a]

                return code_equality
            if "code" in (lhs[0], rhs[0]) and "const" in (lhs[0], rhs[0]):
                code_fn = lhs[1] if lhs[0] == "code" else rhs[1]
                value = lhs[1] if lhs[0] == "const" else rhs[1]

                def const_equality(run):
                    codes = code_fn(run)
                    target = interner.lookup(value)
                    _, _, _, is_nan = interner.tables()
                    if target == -1 or (isinstance(value, float) and value != value):
                        hit = np.zeros(run.n, dtype=bool)
                    else:
                        hit = (codes == target) & ~is_nan[codes]
                    return hit if op == "==" else ~hit

                return const_equality
            # a computed float is involved: equality through float images
            return self._numeric_mask(op, lhs, rhs, equality=True)
        return self._numeric_mask(op, lhs, rhs, equality=False)

    def _numeric_mask(self, op: str, lhs, rhs, equality: bool):
        """Comparison via float images.  For ordering, *every* operand
        value must be safely numeric (compiled raises on mixed-type
        ordering; big ints compare exactly in Python — both fall back).
        For equality, unsafe values force a fallback too: a float can
        equal an out-of-range int exactly in Python, and a non-numeric
        never equals a number — but both require knowing which is which,
        and the safe mask alone cannot tell.  Constants are resolved at
        lowering time."""
        interner = self.interner

        def resolve(side):
            kind, payload = side
            if kind == "float":
                return payload
            if kind == "const":
                value = payload
                if isinstance(value, (bool, int, float)) and (
                    isinstance(value, float) or -(2**53) <= value <= 2**53
                ):
                    as_float = float(value)
                    return lambda run: as_float
                raise VectorizationFallback(
                    f"constant {value!r} is not safely numeric"
                )

            def from_codes(run, codes_fn=payload):
                codes = codes_fn(run)
                floats, _, is_safe, _ = interner.tables()
                if not is_safe[codes].all():
                    raise VectorRuntimeFallback(
                        "comparison over non-numeric or unsafe values"
                    )
                return floats[codes]

            return from_codes

        lfn = resolve(lhs)
        rfn = resolve(rhs)
        if op == "==":
            return lambda run: lfn(run) == rfn(run)
        if op == "!=":
            return lambda run: lfn(run) != rfn(run)
        if op == "<":
            return lambda run: lfn(run) < rfn(run)
        if op == "<=":
            return lambda run: lfn(run) <= rfn(run)
        if op == ">":
            return lambda run: lfn(run) > rfn(run)
        return lambda run: lfn(run) >= rfn(run)

    def lower_assignment(self, assignment: Assignment):
        name = assignment.variable.name
        if name in self.bound:
            # bound re-assignment is an equality check (plain Python ==)
            mask_fn = self._comparison_mask(
                "==", assignment.variable, assignment.expression
            )
            return lambda run: _mask_filter(run, mask_fn(run))
        kind, payload = self.lower_value(assignment.expression)
        if kind == "const":
            code = self.interner.intern(payload)
            slot = self.slot_for(name, "code")
            self.bound.add(name)

            def bind_const(run: _Run) -> _Run:
                out = _Run(run.n, list(run.cols))
                out.set_col(slot, np.full(run.n, code, dtype=np.int64))
                return out

            return bind_const
        slot = self.slot_for(name, kind)
        self.bound.add(name)

        def bind_value(run: _Run, fn=payload) -> _Run:
            out = _Run(run.n, list(run.cols))
            out.set_col(slot, fn(run))
            return out

        return bind_value


def _mask_filter(run: _Run, mask) -> _Run:
    """Filter by a mask that may be a scalar (constant-only comparison)."""
    if isinstance(mask, (bool, np.bool_)):
        return run if mask else _Run(0, run.cols)
    return run.filter(mask)


def _apply_checks(run: _Run, block, rows, check_pairs, interner) -> _Run:
    """Intra-atom repeated-variable checks (NaN-corrected equality)."""
    if not check_pairs:
        return run
    mask = None
    _, _, _, is_nan = interner.tables()
    for slot, position in check_pairs:
        a = run.col(slot)
        b = block.column(position)[rows]
        keep = (a == b) & ~is_nan[a]
        mask = keep if mask is None else (mask & keep)
    return run.filter(mask)


# ----------------------------------------------------------------------
# the compiled-per-row tail
# ----------------------------------------------------------------------

class _Tail:
    """Per-row continuation for plan steps the batch backend skips.

    Built from the *compiled* lowering (same closures, same shared
    aggregate state, same head instantiation), so everything from the
    cut onward behaves bit-identically to ``Engine(vectorize=False)``.
    """

    __slots__ = ("entry", "regs", "sink", "firings", "decoders")

    def __init__(self, entry, regs, sink, firings, decoders):
        self.entry = entry
        self.regs = regs
        self.sink = sink
        self.firings = firings
        self.decoders = decoders

    def run(self, run: _Run, interner) -> tuple[list, int]:
        sink = self.sink
        sink.clear()
        self.firings[0] = 0
        regs = self.regs
        entry = self.entry
        columns = []
        values = interner.values
        for slot, kind in self.decoders:
            col = run.col(slot)
            if kind == "code":
                columns.append((slot, [values[c] for c in col.tolist()]))
            else:
                columns.append((slot, col.tolist()))
        for i in range(run.n):
            for slot, decoded in columns:
                regs[slot] = decoded[i]
            entry(regs)
        return sink, self.firings[0]


def _build_tail(engine, rule, plan, vec: _VecLowering, cut: int):
    """Lower plan steps [cut:] plus the head through the compiled path."""
    lowering = _Lowering(engine, rule, plan, counting=False)
    lowering.slots = dict(vec.slots)
    lowering.bound = set(vec.bound)
    literals = rule.body
    makers = []
    try:
        for index in plan.order[cut:]:
            literal = literals[index]
            if isinstance(literal, Atom):
                maker = lowering.lower_atom(literal)
            elif isinstance(literal, Negation):
                maker = lowering.lower_negation(literal)
            elif isinstance(literal, Comparison):
                maker = lowering.lower_comparison(literal)
            elif isinstance(literal, Assignment):
                maker = lowering.lower_assignment(literal)
            elif isinstance(literal, Aggregate):
                maker = lowering.lower_aggregate(literal)
            else:
                raise VectorizationFallback(
                    f"unsupported body literal {literal!r}"
                )
            makers.append(maker)
        step = lowering.lower_final()
    except CompilationFallback as fallback:
        raise VectorizationFallback(str(fallback)) from None
    for maker in reversed(makers):
        step = maker(step)
    regs = [None] * len(lowering.slots)
    # only slots the vectorized prefix actually bound carry columns — an
    # aborted lowering may have allocated slots it never filled
    decoders = tuple(
        (slot, vec.kinds[slot])
        for name, slot in vec.slots.items()
        if name in vec.bound
    )
    return _Tail(step, regs, lowering.sink, lowering.firings, decoders)


# ----------------------------------------------------------------------
# vectorized head emission
# ----------------------------------------------------------------------

class _VecFinal:
    """Dedup + decode + emit for rules that stay vectorized end to end."""

    __slots__ = ("dedup_slots", "kinds", "builders", "interner")

    def __init__(self, dedup_slots, kinds, builders, interner):
        self.dedup_slots = dedup_slots
        self.kinds = kinds
        self.builders = builders
        self.interner = interner

    def emit(self, run: _Run) -> tuple[list, int]:
        firings = run.n
        if firings == 0:
            return [], 0
        rows = self._first_occurrences(run)
        decoded: dict[int, list] = {}
        values = self.interner.values
        for slot in {s for _, specs in self.builders
                     for kind, s in specs if kind == "slot"}:
            col = run.col(slot)[rows]
            if self.kinds[slot] == "code":
                decoded[slot] = [values[c] for c in col.tolist()]
            else:
                decoded[slot] = col.tolist()
        facts = []
        append = facts.append
        for i in range(len(rows)):
            for predicate, specs in self.builders:
                append(
                    (
                        predicate,
                        tuple(
                            decoded[payload][i] if kind == "slot" else payload
                            for kind, payload in specs
                        ),
                    )
                )
        return facts, firings

    def _first_occurrences(self, run: _Run):
        """Indexes of the first row per distinct head-variable key, in
        original order.  Duplicate rows derive exactly the facts their
        first occurrence derives, which ``Database.add`` rejects — so
        dropping them preserves the delta and the insertion order."""
        if not self.dedup_slots:
            return np.zeros(1, dtype=np.int64)
        packed = None
        for slot in self.dedup_slots:
            col = run.col(slot)
            if self.kinds[slot] == "float":
                if np.isnan(col).any():
                    # compiled dedups NaN facts by object identity;
                    # bitwise dedup would merge distinct NaN objects
                    raise VectorRuntimeFallback("NaN in head values")
                col = _dense(col.view(np.int64))
            packed = col if packed is None else _pack_pair(_dense(packed), col)
        _, first = np.unique(packed, return_index=True)
        first.sort()
        return first


# ----------------------------------------------------------------------
# compiled rule object + entry point
# ----------------------------------------------------------------------

class VectorizedRule:
    """A planned rule lowered to batch steps (plus optional per-row tail)."""

    __slots__ = (
        "plan", "signature", "interner", "_seed_entry", "_steps", "_tail",
        "_final",
    )

    def __init__(self, plan, signature, interner, seed_entry, steps, tail, final):
        self.plan = plan
        self.signature = signature
        self.interner = interner
        self._seed_entry = seed_entry
        self._steps = steps
        self._tail = tail
        self._final = final

    def execute(self, seed_facts) -> tuple[list, int]:
        """Run the batch pipeline; returns (derived facts, firings).

        The returned list is reused across calls when the rule has a
        per-row tail — the caller must consume it before the next
        ``execute`` (same contract as the compiled path).  Raises
        :class:`VectorRuntimeFallback` — always before any engine state
        has been touched — when a safety check fails.
        """
        if len(self.interner) >= MAX_CODES:
            raise VectorRuntimeFallback("interner exceeded code budget")
        if self._seed_entry is not None:
            run = self._seed_entry(seed_facts)
        else:
            run = _Run(1, [])
        for step in self._steps:
            if run.n == 0:
                return [], 0
            run = step(run)
        if run.n == 0:
            return [], 0
        if self._tail is not None:
            return self._tail.run(run, self.interner)
        return self._final.emit(run)


def compile_rule_vectorized(engine, rule, plan: JoinPlan) -> VectorizedRule:
    """Lower ``rule`` under ``plan`` to the batch backend.

    Steps the backend does not cover become a per-row tail built from
    the compiled lowering; if that cut would arrive before the first
    join there is nothing to batch, and the whole rule falls back with
    :class:`VectorizationFallback`.
    """
    if not NUMPY_AVAILABLE:
        raise VectorizationFallback("numpy unavailable")
    if not plan.feasible:
        raise VectorizationFallback("plan fell back to textual order")
    if engine.provenance_enabled:
        raise VectorizationFallback("provenance requires per-row traces")
    vec = _VecLowering(engine, rule, plan)
    literals = rule.body

    seed_entry = None
    if plan.seed_index is not None:
        seed_entry = vec.lower_seed(literals[plan.seed_index])

    cut: int | None = None
    for step_number, index in enumerate(plan.order):
        literal = literals[index]
        try:
            if isinstance(literal, Atom):
                step = vec.lower_atom(literal)
            elif isinstance(literal, Negation):
                step = vec.lower_negation(literal)
            elif isinstance(literal, Comparison):
                step = vec.lower_comparison(literal)
            elif isinstance(literal, Assignment):
                step = vec.lower_assignment(literal)
            else:  # Aggregate and anything unexpected: per-row territory
                raise VectorizationFallback("aggregate folds per row")
        except VectorizationFallback:
            cut = step_number
            break
        vec.steps.append(step)

    if cut is not None and vec.joins_lowered == 0:
        # nothing batched before the per-row cut: the tail would just be
        # the compiled rule plus decode overhead
        raise VectorizationFallback("no join reached before the cut")

    tail = None
    final = None
    if cut is not None:
        tail = _build_tail(engine, rule, plan, vec, cut)
    else:
        final = _lower_final_vectorized(engine, rule, vec)
        if final is None:
            tail = _build_tail(engine, rule, plan, vec, len(plan.order))
    signature = (plan.order, tuple(step.probe_positions for step in plan.steps))
    return VectorizedRule(
        plan, signature, vec.interner, seed_entry, vec.steps, tail, final
    )


def _lower_final_vectorized(engine, rule, vec: _VecLowering):
    """Head emission without per-row closures, or None when the head
    needs them (existentials, complex terms, unbound variables)."""
    existential, _, _ = engine._head_plan(rule)
    if existential:
        return None
    builders = []
    dedup_slots: list[int] = []
    seen: set[int] = set()
    for atom in rule.head:
        specs = []
        for term in atom.terms:
            if isinstance(term, Variable):
                slot = vec.slots.get(term.name)
                if slot is None:
                    return None
                specs.append(("slot", slot))
                if slot not in seen:
                    seen.add(slot)
                    dedup_slots.append(slot)
            elif isinstance(term, Constant):
                specs.append(("const", term.value))
            else:
                return None
        builders.append((atom.predicate, tuple(specs)))
    return _VecFinal(tuple(dedup_slots), vec.kinds, tuple(builders), vec.interner)
