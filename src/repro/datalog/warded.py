"""Wardedness analysis (the fragment behind Vadalog's PTIME guarantee).

The paper leans on Warded Datalog± [12, 14]: "if the task is described in
Warded Datalog, the fragment at the core of the Vadalog language, there
is the formal guarantee of polynomial complexity".  This module implements
the static analysis that decides whether a program is warded:

* **affected positions** — predicate positions that may carry labelled
  nulls: positions where an existential variable appears in some head,
  propagated through rules (a body variable occurring *only* in affected
  positions propagates its head occurrences);
* **harmful variables** (of a rule) — body variables appearing only in
  affected positions (they may bind nulls);
* **dangerous variables** — harmful variables that also occur in the
  rule's head (they may propagate nulls);
* a rule is **warded** when all its dangerous variables occur together
  in a single body atom (the *ward*) and the ward shares only harmless
  variables with the rest of the body.

A program where every rule is warded is in Warded Datalog±, and
reasoning over it is PTIME in data complexity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .rules import Program, Rule
from .terms import Variable

Position = tuple[str, int]  # (predicate, argument index)


@dataclass
class WardednessReport:
    """Outcome of the analysis, with per-rule diagnostics."""

    warded: bool
    affected_positions: set[Position]
    violations: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.warded


def affected_positions(program: Program) -> set[Position]:
    """The fixpoint of null-carrying positions.

    Base: positions of existential variables in rule heads.  Step: if a
    body variable of a rule occurs only in affected positions, every head
    position it reaches becomes affected.
    """
    affected: set[Position] = set()
    for rule in program.rules:
        existential = rule.existential_variables()
        for atom in rule.head:
            for index, term in enumerate(atom.terms):
                if isinstance(term, Variable) and term in existential:
                    affected.add((atom.predicate, index))

    changed = True
    while changed:
        changed = False
        for rule in program.rules:
            for variable in _propagating_variables(rule, affected):
                for atom in rule.head:
                    for index, term in enumerate(atom.terms):
                        if term == variable:
                            position = (atom.predicate, index)
                            if position not in affected:
                                affected.add(position)
                                changed = True
    return affected


def _variable_positions(rule: Rule, variable: Variable) -> list[Position]:
    """Body positions (positive atoms) where ``variable`` occurs."""
    positions: list[Position] = []
    for atom in rule.positive_atoms():
        for index, term in enumerate(atom.terms):
            if term == variable:
                positions.append((atom.predicate, index))
    return positions


def _propagating_variables(rule: Rule, affected: set[Position]) -> list[Variable]:
    """Body variables that occur in body atoms and only at affected positions."""
    result = []
    seen: set[Variable] = set()
    for atom in rule.positive_atoms():
        for term in atom.terms:
            if isinstance(term, Variable) and term not in seen:
                seen.add(term)
                positions = _variable_positions(rule, term)
                if positions and all(p in affected for p in positions):
                    result.append(term)
    return result


def harmful_variables(rule: Rule, affected: set[Position]) -> set[Variable]:
    """Body variables that occur only at affected positions (may bind nulls)."""
    harmful: set[Variable] = set()
    for atom in rule.positive_atoms():
        for term in atom.terms:
            if isinstance(term, Variable):
                positions = _variable_positions(rule, term)
                if positions and all(p in affected for p in positions):
                    harmful.add(term)
    return harmful


def dangerous_variables(rule: Rule, affected: set[Position]) -> set[Variable]:
    """Harmful variables that also appear in the head (may propagate nulls)."""
    return harmful_variables(rule, affected) & rule.head_variables()


def is_rule_warded(rule: Rule, affected: set[Position]) -> tuple[bool, str]:
    """Check one rule; returns (warded?, human-readable reason)."""
    dangerous = dangerous_variables(rule, affected)
    if not dangerous:
        return True, ""
    harmless = {
        v
        for atom in rule.positive_atoms()
        for v in atom.variables()
    } - harmful_variables(rule, affected)
    for ward in rule.positive_atoms():
        ward_vars = set(ward.variables())
        if not dangerous <= ward_vars:
            continue
        # the ward shares only harmless variables with the other atoms
        shared_ok = True
        for other in rule.positive_atoms():
            if other is ward:
                continue
            shared = ward_vars & set(other.variables())
            if not shared <= harmless:
                shared_ok = False
                break
        if shared_ok:
            return True, ""
    names = ", ".join(sorted(v.name for v in dangerous))
    return False, (
        f"rule '{rule.label or rule}' has dangerous variable(s) {names} "
        "not confined to a single ward atom"
    )


def check_wardedness(program: Program) -> WardednessReport:
    """Full analysis: is ``program`` in Warded Datalog±?"""
    affected = affected_positions(program)
    violations: list[str] = []
    for rule in program.rules:
        warded, reason = is_rule_warded(rule, affected)
        if not warded:
            violations.append(reason)
    return WardednessReport(
        warded=not violations,
        affected_positions=affected,
        violations=violations,
    )
