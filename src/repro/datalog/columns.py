"""Columnar relation cache: interned code columns per (predicate, arity).

The vectorized executor (:mod:`repro.datalog.vectorized`) evaluates rule
bodies whole-relation-at-a-time.  This module supplies its data layer:

* :class:`ValueInterner` — a dictionary-encoding of fact values into
  dense int64 codes.  The dict uses Python ``==``/``hash`` semantics, so
  two values get the same code exactly when the tuple-based hash joins of
  the compiled path would treat them as equal (``1 == 1.0`` shares a
  code; labelled nulls share a code per label; a NaN object is equal only
  to itself, so each distinct NaN object gets its own code — matching
  Python's identity-first container semantics).  Alongside the value
  table the interner maintains float images and safety masks that let the
  executor decide *per column* whether numeric work can be done in
  float64 without diverging from Python scalar arithmetic;
* :class:`ColumnStore` — per (predicate, arity) struct-of-arrays blocks
  of codes, synced incrementally against the database's live row lists.
  The sync key is ``(len(rows), removal_count)``: while a predicate only
  grows, new rows are appended to the existing arrays; a removal forces a
  rebuild of that predicate's blocks (removals are rare outside DRed).
  The store also caches join build sides (stable argsort + packed keys
  per probe signature) so a relation that several rules probe the same
  way is sorted once per version.

Everything here degrades gracefully without numpy: ``NUMPY_AVAILABLE``
is False and the engine keeps the per-tuple compiled path.
"""

from __future__ import annotations

from typing import Any, Iterable

try:  # pragma: no cover - exercised implicitly by every vectorized test
    import numpy as np

    NUMPY_AVAILABLE = True
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]
    NUMPY_AVAILABLE = False

#: Values with |v| <= 2**53 are exactly representable in float64, so
#: comparisons through the float image agree with Python integer
#: comparison.  (Python bools are ints: True == 1.0 both ways.)
_SAFE_INT = 2**53

#: Code-space guard: the executor packs two codes into one int64 as
#: ``(a << 32) | b``; past this many distinct values it falls back.
MAX_CODES = 2**31


class ValueInterner:
    """Append-only bidirectional value <-> int64 code dictionary."""

    __slots__ = (
        "codes", "values", "_floats", "_is_float", "_is_safe", "_is_nan", "_cache"
    )

    def __init__(self) -> None:
        self.codes: dict[Any, int] = {}
        self.values: list[Any] = []
        self._floats: list[float] = []
        self._is_float: list[bool] = []
        self._is_safe: list[bool] = []
        self._is_nan: list[bool] = []
        # materialised numpy images, rebuilt lazily when the table grew:
        # (size, float64 image, is_float mask, is_safe mask, is_nan mask)
        self._cache: tuple | None = None

    def __len__(self) -> int:
        return len(self.values)

    def intern(self, value: Any) -> int:
        """The code of ``value``, allocating one on first sight."""
        code = self.codes.get(value)
        if code is not None:
            return code
        code = len(self.values)
        self.codes[value] = code
        self.values.append(value)
        kind = type(value)
        if kind is float:
            self._floats.append(value)
            self._is_float.append(True)
            self._is_safe.append(True)
            self._is_nan.append(value != value)
        elif kind is int or kind is bool:
            safe = -_SAFE_INT <= value <= _SAFE_INT
            self._floats.append(float(value) if safe else float("nan"))
            self._is_float.append(False)
            self._is_safe.append(safe)
            self._is_nan.append(False)
        else:
            self._floats.append(float("nan"))
            self._is_float.append(False)
            self._is_safe.append(False)
            self._is_nan.append(False)
        return code

    def lookup(self, value: Any) -> int:
        """The code of ``value``, or -1 when it was never interned (and
        therefore cannot occur in any column)."""
        code = self.codes.get(value)
        return -1 if code is None else code

    def tables(self):
        """(float image, is_float, is_safe, is_nan) as numpy arrays.

        The arrays are snapshots covering every code allocated so far;
        they are cached and only rebuilt after the table grows.
        """
        size = len(self.values)
        cache = self._cache
        if cache is not None and cache[0] == size:
            return cache[1], cache[2], cache[3], cache[4]
        floats = np.asarray(self._floats, dtype=np.float64)
        is_float = np.asarray(self._is_float, dtype=bool)
        is_safe = np.asarray(self._is_safe, dtype=bool)
        is_nan = np.asarray(self._is_nan, dtype=bool)
        self._cache = (size, floats, is_float, is_safe, is_nan)
        return floats, is_float, is_safe, is_nan


class Block:
    """Growable struct-of-arrays code columns for one (predicate, arity)."""

    __slots__ = ("arity", "size", "_columns", "_capacity")

    def __init__(self, arity: int, capacity: int = 16):
        self.arity = arity
        self.size = 0
        self._capacity = max(capacity, 1)
        self._columns = [
            np.empty(self._capacity, dtype=np.int64) for _ in range(arity)
        ]

    def append_rows(self, interner: ValueInterner, rows: Iterable[tuple]) -> None:
        intern = interner.intern
        columns = self._columns
        size = self.size
        capacity = self._capacity
        for values in rows:
            if size == capacity:
                capacity = max(2 * capacity, 16)
                for position, column in enumerate(columns):
                    grown = np.empty(capacity, dtype=np.int64)
                    grown[:size] = column[:size]
                    columns[position] = grown
                self._capacity = capacity
            for position, value in enumerate(values):
                columns[position][size] = intern(value)
            size += 1
        self.size = size

    def column(self, position: int):
        return self._columns[position][: self.size]

    def columns(self) -> list:
        return [column[: self.size] for column in self._columns]

    def snapshot(self) -> "Block":
        clone = Block.__new__(Block)
        clone.arity = self.arity
        clone.size = self.size
        clone._capacity = self.size
        clone._columns = [np.array(c[: self.size]) for c in self._columns]
        return clone


class ColumnStore:
    """Keeps code-column blocks in sync with a Database's row lists."""

    def __init__(self, database, interner: ValueInterner | None = None):
        if not NUMPY_AVAILABLE:  # pragma: no cover
            raise ImportError("repro.datalog.columns requires numpy")
        self._database = database
        self.interner = interner if interner is not None else ValueInterner()
        self._blocks: dict[tuple[str, int], Block] = {}
        # predicate -> (rows consumed, removal count at last sync)
        self._synced: dict[str, tuple[int, int]] = {}
        # (predicate, arity, probe positions, build filter signature)
        #   -> (block size, cached build-side structures)
        self._build_cache: dict[tuple, tuple[int, tuple]] = {}
        #: blocks rebuilt because the predicate saw removals
        self.rebuilds = 0

    # ------------------------------------------------------------------
    # sync
    # ------------------------------------------------------------------

    def block(self, predicate: str, arity: int) -> Block | None:
        """The synced block for (predicate, arity); None when empty."""
        self.sync(predicate)
        return self._blocks.get((predicate, arity))

    def sync(self, predicate: str) -> None:
        """Fold any new (or rebuild after removed) rows into the blocks."""
        database = self._database
        rows = database.live_rows(predicate)
        removals = database.removal_count(predicate)
        consumed, seen_removals = self._synced.get(predicate, (0, 0))
        if removals != seen_removals:
            # rows were deleted: positions shifted, start over
            self.rebuilds += 1
            consumed = 0
            for key in [k for k in self._blocks if k[0] == predicate]:
                del self._blocks[key]
            for key in [k for k in self._build_cache if k[0] == predicate]:
                del self._build_cache[key]
        total = len(rows)
        if consumed == total and removals == seen_removals:
            return
        by_arity: dict[int, list[tuple]] = {}
        for values in rows[consumed:]:
            by_arity.setdefault(len(values), []).append(values)
        for arity, fresh in by_arity.items():
            block = self._blocks.get((predicate, arity))
            if block is None:
                block = self._blocks[(predicate, arity)] = Block(
                    arity, capacity=len(fresh)
                )
            block.append_rows(self.interner, fresh)
        self._synced[predicate] = (total, removals)

    def preload(self, predicate: str) -> None:
        """Eagerly sync one predicate (boot-time hook for loaders)."""
        self.sync(predicate)

    def snapshot_for(self, clone_database) -> "ColumnStore":
        """A store over ``clone_database`` reusing this store's work.

        Intended for :meth:`Database.copy`: the clone's row lists equal
        ours right now, so blocks carry over as numpy copies (no
        re-interning) and the append-only interner is shared by
        reference.  Sync state restarts from the clone's own counters.
        """
        store = ColumnStore(clone_database, interner=self.interner)
        for key, block in self._blocks.items():
            store._blocks[key] = block.snapshot()
        for predicate, (consumed, _) in self._synced.items():
            store._synced[predicate] = (
                consumed,
                clone_database.removal_count(predicate),
            )
        return store

    # ------------------------------------------------------------------
    # join build sides
    # ------------------------------------------------------------------

    def sorted_keys(self, predicate: str, arity: int, key_positions: tuple[int, ...]):
        """Cached (stable sort order, sorted packed keys) join build side.

        The stable argsort means rows sharing a key stay in insertion
        order, which is what lets the executor reproduce the compiled
        path's nested-loop emission order exactly.  Only 1- and 2-column
        keys are packed (codes are < 2**31, so two fit one int64); wider
        keys go through the executor's per-call shared densify.  Returns
        None when the relation is empty.
        """
        block = self.block(predicate, arity)
        if block is None or block.size == 0:
            return None
        key = (predicate, arity, key_positions)
        cached = self._build_cache.get(key)
        if cached is not None and cached[0] == block.size:
            return cached[1]
        if len(key_positions) == 1:
            packed = block.column(key_positions[0])
        else:
            packed = (block.column(key_positions[0]) << 32) | block.column(
                key_positions[1]
            )
        order = np.argsort(packed, kind="stable")
        entry = (order, packed[order])
        self._build_cache[key] = (block.size, entry)
        return entry
