"""Predicate dependency analysis and stratification.

Negation must not occur inside a recursive cycle (the classic stratified
semantics); monotonic aggregates *are* allowed in recursion — that is the
point of Vadalog's monotonic aggregation — so aggregate edges do not
constrain the stratification.

The module builds the predicate dependency graph, finds its strongly
connected components, checks that no negative edge stays inside a
component, and returns rule groups in bottom-up topological order.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from .errors import StratificationError
from .rules import Program, Rule


@dataclass
class Stratum:
    """One evaluation layer: rules whose heads live in this layer."""

    index: int
    predicates: set[str]
    rules: list[Rule]
    recursive: bool


def _dependency_edges(program: Program) -> tuple[set[tuple[str, str]], set[tuple[str, str]]]:
    """Return (positive, negative) head<-body predicate dependency edges."""
    positive: set[tuple[str, str]] = set()
    negative: set[tuple[str, str]] = set()
    for rule in program.rules:
        heads = rule.head_predicates()
        for head in heads:
            for atom in rule.positive_atoms():
                positive.add((head, atom.predicate))
            for negation in rule.negated_atoms():
                negative.add((head, negation.atom.predicate))
            # the heads of one rule are derived together: tie them into a
            # single SCC so the rule's stratum contains all of them and no
            # consumer can be scheduled in between
            for other in heads:
                if other != head:
                    positive.add((head, other))
    return positive, negative


def _tarjan_scc(nodes: set[str], successors: dict[str, set[str]]) -> list[set[str]]:
    """Tarjan's strongly-connected components, iterative to avoid recursion limits.

    Returns components in reverse topological order (callees before callers).
    """
    index_counter = 0
    indexes: dict[str, int] = {}
    lowlinks: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[set[str]] = []

    for root in nodes:
        if root in indexes:
            continue
        work: list[tuple[str, iter]] = [(root, iter(successors.get(root, ())))]
        indexes[root] = lowlinks[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in indexes:
                    indexes[child] = lowlinks[child] = index_counter
                    index_counter += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(successors.get(child, ()))))
                    advanced = True
                    break
                if child in on_stack:
                    lowlinks[node] = min(lowlinks[node], indexes[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
            if lowlinks[node] == indexes[node]:
                component: set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
    return components


def stratify(program: Program) -> list[Stratum]:
    """Split ``program`` into bottom-up strata; raise on unstratifiable negation."""
    positive, negative = _dependency_edges(program)
    nodes: set[str] = set()
    for rule in program.rules:
        nodes.update(rule.head_predicates())
        nodes.update(rule.body_predicates())
    for predicate, _ in program.facts:
        nodes.add(predicate)

    successors: dict[str, set[str]] = defaultdict(set)
    for head, body in positive | negative:
        successors[head].add(body)

    components = _tarjan_scc(nodes, successors)

    component_of: dict[str, int] = {}
    for component_index, component in enumerate(components):
        for predicate in component:
            component_of[predicate] = component_index

    for head, body in negative:
        if component_of.get(head) == component_of.get(body):
            raise StratificationError(
                f"negation on {body!r} occurs in a recursive cycle with {head!r}; "
                "the program is not stratifiable"
            )

    # Tarjan emits components in reverse topological order, which is exactly
    # bottom-up evaluation order (dependencies first).
    strata: list[Stratum] = []
    assigned_rules: set[int] = set()
    for component_index, component in enumerate(components):
        stratum_rules: list[Rule] = []
        for rule_index, rule in enumerate(program.rules):
            if rule_index in assigned_rules:
                continue
            heads = rule.head_predicates()
            if heads & component:
                # a rule whose heads span components goes in the highest one;
                # since we walk bottom-up, defer until all heads are covered.
                head_components = {component_of[h] for h in heads}
                if max(head_components) == component_index:
                    stratum_rules.append(rule)
                    assigned_rules.add(rule_index)
        recursive = any(
            body in component
            for rule in stratum_rules
            for body in rule.body_predicates()
        ) or len(component) > 1
        if stratum_rules or component:
            strata.append(
                Stratum(
                    index=len(strata),
                    predicates=set(component),
                    rules=stratum_rules,
                    recursive=recursive,
                )
            )
    return strata
