"""repro — reproduction of "Weaving Enterprise Knowledge Graphs: The Case of
Company Ownership Graphs" (EDBT 2020).

The package implements Vada-Link, a knowledge-graph augmentation framework
over company ownership graphs, together with every substrate it depends on:
a Datalog± (Vadalog-fragment) reasoning engine, a property-graph model,
node2vec embeddings, ownership analytics (company control, close links,
family control), record-linkage-style family detection, and synthetic data
generators calibrated to the paper's Italian company database statistics.

Typical entry points::

    from repro.graph import CompanyGraph
    from repro.ownership import control_closure, close_links
    from repro.core import VadaLink, KnowledgeGraph
    from repro.datagen import generate_company_graph
"""

__version__ = "1.0.0"
