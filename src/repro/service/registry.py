"""Tenant-scoped graph registry: one service, many isolated graphs.

Every layer of the service historically assumed exactly one graph per
process — one :class:`~repro.service.snapshot.SnapshotManager`, one
updater, one cache keyspace, one shared-memory segment lineage, one
catalog stream.  The registry is the refactor point that removes that
assumption: a :class:`GraphRegistry` maps a **tenant id** to its own
:class:`TenantBinding` (snapshot manager + builder + updater), and the
HTTP server routes ``/t/{tenant}/...`` onto it while un-prefixed routes
keep working against the *alias* tenant (``default`` unless the service
was seeded under another name).

Isolation contract (the tenant-isolation tests assert it byte-for-byte):

* cache keys carry the tenant (see
  :func:`~repro.service.snapshot.snapshot_key`), so two tenants whose
  graphs collide in node ids *and* snapshot versions can never read each
  other's cached payloads;
* mutations stage and re-augment per tenant — publishing tenant A's next
  version leaves tenant B's version untouched;
* in the worker pool, shared-memory segments carry the tenant in their
  name and the publish/retire protocol, so one ``SO_REUSEPORT`` fleet
  serves all tenants with per-tenant atomic swaps.

Tenant names are restricted to ``[A-Za-z0-9][A-Za-z0-9_.-]{0,63}`` so a
name is always safe inside a URL path segment, a shared-memory segment
name, and a store directory name without escaping.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

from ..graph.company_graph import CompanyGraph
from ..telemetry import NULL_TRACER
from .snapshot import DEFAULT_TENANT, SnapshotBuilder, SnapshotConfig, SnapshotManager
from .updates import GraphUpdater

__all__ = [
    "DEFAULT_TENANT",
    "GraphRegistry",
    "TenantBinding",
    "TenantError",
    "UnknownTenantError",
    "validate_tenant",
]

#: A tenant name must survive a URL path segment, a shm segment name,
#: and a directory name unescaped.
_TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}\Z")


class TenantError(ValueError):
    """A malformed tenant name or an invalid tenant operation (HTTP 400)."""


class UnknownTenantError(LookupError):
    """A tenant id with no binding in the registry (HTTP 404)."""

    def __init__(self, tenant: str):
        super().__init__(f"unknown tenant: {tenant}")
        self.tenant = tenant


def validate_tenant(name: Any) -> str:
    """Return ``name`` if it is a legal tenant id, raise otherwise."""
    if not isinstance(name, str) or not _TENANT_RE.match(name):
        raise TenantError(
            f"bad tenant name {name!r}: must match {_TENANT_RE.pattern}"
        )
    return name


@dataclass
class TenantBinding:
    """Everything one tenant owns inside a service process.

    ``manager`` is the tenant's atomic-swap snapshot holder; ``builder``
    and ``updater`` exist only where this process is the tenant's
    builder (read-only pool workers bind a manager alone).
    """

    name: str
    manager: SnapshotManager
    builder: SnapshotBuilder | None = None
    updater: GraphUpdater | None = None
    created_at: float = field(default_factory=time.time)

    @property
    def version(self) -> int:
        return self.manager.version

    def info(self) -> dict[str, Any]:
        """The admin-surface description of this tenant."""
        payload: dict[str, Any] = {
            "tenant": self.name,
            "version": self.manager.version,
            "created_at": self.created_at,
            "mutable": self.updater is not None,
        }
        try:
            snapshot = self.manager.current
        except RuntimeError:
            payload["nodes"] = payload["edges"] = 0
        else:
            payload["nodes"] = snapshot.graph.node_count
            payload["edges"] = snapshot.graph.edge_count
        return payload


class GraphRegistry:
    """Tenant id -> :class:`TenantBinding`, plus the creation template.

    The registry is the mechanism only — naming policy (which tenant
    un-prefixed routes alias to, which tenant may not be deleted) lives
    with the caller.  ``alias`` records the first tenant bound, which the
    server uses as the target of un-prefixed (legacy) routes.

    ``snapshot_config`` / ``classifiers`` seed the builder of tenants
    created empty through the admin API, so a ``PUT /t/{tenant}`` tenant
    augments exactly like the seeded one.
    """

    def __init__(
        self,
        snapshot_config: SnapshotConfig | None = None,
        classifiers: Sequence[Any] | None = None,
        tracer=None,
    ):
        self.snapshot_config = snapshot_config
        self.classifiers = classifiers
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._bindings: dict[str, TenantBinding] = {}
        #: the tenant un-prefixed routes resolve to (first bound wins)
        self.alias: str = DEFAULT_TENANT
        #: optional ``tenant -> persist_hook`` factory: when set, every
        #: updater bound after that point persists its published
        #: snapshots through the returned hook (``serve --store`` wires
        #: this so tenants created over HTTP are durable too)
        self.persist_hook_factory = None
        self.created = 0
        self.dropped = 0

    # -- binding lifecycle ---------------------------------------------

    def adopt(
        self,
        name: str,
        manager: SnapshotManager,
        builder: SnapshotBuilder | None = None,
        base_graph: CompanyGraph | None = None,
    ) -> TenantBinding:
        """Bind an existing manager (and optionally its build chain)."""
        validate_tenant(name)
        if name in self._bindings:
            raise TenantError(f"tenant {name!r} already registered")
        updater = None
        if builder is not None and base_graph is not None:
            updater = GraphUpdater(manager, builder, base_graph, tracer=self.tracer)
            if self.persist_hook_factory is not None:
                updater.persist_hook = self.persist_hook_factory(name)
        binding = TenantBinding(
            name=name, manager=manager, builder=builder, updater=updater
        )
        if not self._bindings:
            self.alias = name
        self._bindings[name] = binding
        return binding

    def create(
        self,
        name: str,
        graph: CompanyGraph | None = None,
        start_version: int = 0,
    ) -> TenantBinding:
        """Build version 1 for a new tenant and bind it.

        With no ``graph`` the tenant starts empty — its graph grows
        through ``/t/{tenant}/mutations``.  Safe to call from an executor
        thread; the build itself is synchronous.
        """
        validate_tenant(name)
        if name in self._bindings:
            raise TenantError(f"tenant {name!r} already registered")
        if graph is None:
            graph = CompanyGraph()
        builder = SnapshotBuilder(
            self.snapshot_config,
            classifiers=self.classifiers,
            tracer=self.tracer,
            start_version=start_version,
        )
        manager = SnapshotManager()
        snapshot = builder.build(graph)
        manager.publish(snapshot)
        binding = self.adopt(name, manager, builder=builder, base_graph=graph)
        if binding.updater is not None and binding.updater.persist_hook is not None:
            # make v1 durable immediately — a created-but-never-mutated
            # tenant must survive a restart too
            binding.updater._persist_sync(snapshot)
        self.created += 1
        return binding

    def drop(self, name: str) -> TenantBinding:
        """Unbind a tenant; raises :class:`UnknownTenantError` if absent."""
        binding = self._bindings.pop(name, None)
        if binding is None:
            raise UnknownTenantError(name)
        self.dropped += 1
        return binding

    # -- lookup ---------------------------------------------------------

    def get(self, name: str) -> TenantBinding:
        binding = self._bindings.get(name)
        if binding is None:
            raise UnknownTenantError(name)
        return binding

    def peek(self, name: str) -> TenantBinding | None:
        return self._bindings.get(name)

    def names(self) -> list[str]:
        return list(self._bindings)

    def items(self) -> Iterator[tuple[str, TenantBinding]]:
        return iter(list(self._bindings.items()))

    def __contains__(self, name: object) -> bool:
        return name in self._bindings

    def __len__(self) -> int:
        return len(self._bindings)

    def stats(self) -> dict[str, Any]:
        return {
            "tenants": len(self._bindings),
            "alias": self.alias,
            "created": self.created,
            "dropped": self.dropped,
            "versions": {n: b.manager.version for n, b in self._bindings.items()},
        }
