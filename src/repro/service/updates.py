"""Live graph updates: deltas -> staging graph -> background re-augment.

``POST /mutations`` lands here.  The updater keeps a *staging* copy of
the company graph (the accumulated state of every accepted delta batch).
Applying a batch is two phases:

1. **validate + apply** (fast, on the event loop): the deltas run
   against a copy of the staging graph; any malformed op raises
   :class:`MutationError` and the whole batch is rejected — the staging
   graph only advances on success;
2. **rebuild + publish** (slow, in an executor thread): the snapshot
   builder re-augments the new graph — warm incremental embedding when
   the batch only *added* edges — and the manager publishes the next
   version atomically.  The previous snapshot keeps serving reads the
   whole time.

Rebuilds are serialized by an asyncio lock; a second batch accepted
during a rebuild simply queues its own rebuild, which starts from the
staging state that already includes both batches.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Sequence

from ..graph.company_graph import SHAREHOLDING, CompanyGraph
from ..graph.property_graph import Edge, GraphError
from ..telemetry import NULL_TRACER
from .snapshot import SnapshotBuilder, SnapshotManager

#: Delta operations accepted by :func:`apply_deltas`.
SUPPORTED_OPS = (
    "add_company",
    "add_person",
    "add_shareholding",
    "remove_shareholding",
    "remove_edge",
    "remove_node",
    "set_property",
)


class MutationError(ValueError):
    """A malformed or inapplicable mutation delta (whole batch rejected)."""


def apply_deltas(
    graph: CompanyGraph, deltas: Sequence[dict[str, Any]]
) -> tuple[list[Edge], bool]:
    """Apply ``deltas`` to ``graph`` in place.

    Returns ``(new_edges, removed_any)``: the shareholding edges added
    (fed to the warm embedder) and whether anything was removed (removals
    force a cold re-embed — the incremental path only models additions).
    Raises :class:`MutationError` on the first bad op; callers apply to a
    throwaway copy so a failed batch leaves no trace.
    """
    new_edges: list[Edge] = []
    removed_any = False
    for position, delta in enumerate(deltas):
        if not isinstance(delta, dict):
            raise MutationError(f"delta #{position} is not an object")
        op = delta.get("op")
        try:
            if op == "add_company":
                graph.add_company(_required(delta, "id"), **delta.get("properties", {}))
            elif op == "add_person":
                graph.add_person(_required(delta, "id"), **delta.get("properties", {}))
            elif op == "add_shareholding":
                edge = graph.add_shareholding(
                    _required(delta, "owner"),
                    _required(delta, "company"),
                    float(_required(delta, "share")),
                    **delta.get("properties", {}),
                )
                new_edges.append(edge)
            elif op == "remove_shareholding":
                owner = _required(delta, "owner")
                company = _required(delta, "company")
                edges = [
                    e for e in graph.out_edges(owner, SHAREHOLDING)
                    if e.target == company
                ]
                if not edges:
                    raise MutationError(
                        f"delta #{position}: no shareholding {owner!r} -> {company!r}"
                    )
                for edge in edges:
                    graph.remove_edge(edge.id)
                removed_any = True
            elif op == "remove_edge":
                graph.remove_edge(_required(delta, "id"))
                removed_any = True
            elif op == "remove_node":
                graph.remove_node(_required(delta, "id"))
                removed_any = True
            elif op == "set_property":
                # via the graph (not the node dict) so the generation
                # counter invalidates any cached columnar frame
                graph.set_property(
                    _required(delta, "id"), _required(delta, "name"), delta.get("value")
                )
            else:
                raise MutationError(
                    f"delta #{position}: unknown op {op!r} "
                    f"(supported: {', '.join(SUPPORTED_OPS)})"
                )
        except MutationError:
            raise
        except (GraphError, TypeError, ValueError) as exc:
            raise MutationError(f"delta #{position} ({op}): {exc}") from exc
    return new_edges, removed_any


class GraphUpdater:
    """Applies mutation batches and publishes new snapshot versions."""

    def __init__(
        self,
        manager: SnapshotManager,
        builder: SnapshotBuilder,
        base_graph: CompanyGraph,
        tracer=None,
    ):
        self._manager = manager
        self._builder = builder
        self._staging = base_graph.copy()
        self._build_lock = asyncio.Lock()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.batches_accepted = 0
        self.batches_rejected = 0
        self.deltas_applied = 0
        self.rebuilds = 0
        self.rebuild_failures = 0
        self.last_rebuild_s = 0.0
        #: test / bench hook — artificial build slowdown (seconds)
        self.build_delay_s = 0.0
        self._rebuilding = 0

    @property
    def rebuild_in_progress(self) -> bool:
        return self._rebuilding > 0

    async def apply(
        self, deltas: Sequence[dict[str, Any]], wait: bool = False
    ) -> dict[str, Any]:
        """Validate and accept one mutation batch.

        Returns an ``accepted`` payload immediately (the rebuild runs in
        the background) unless ``wait`` is true, in which case the reply
        carries the newly published version.
        """
        if not deltas:
            raise MutationError("empty delta batch")
        candidate = self._staging.copy()
        try:
            new_edges, removed_any = apply_deltas(candidate, deltas)
        except MutationError:
            self.batches_rejected += 1
            raise
        self._staging = candidate
        self.batches_accepted += 1
        self.deltas_applied += len(deltas)
        task = asyncio.get_running_loop().create_task(
            self._rebuild(candidate, None if removed_any else new_edges)
        )
        if wait:
            snapshot = await task
            return {
                "status": "published",
                "applied": len(deltas),
                "version": snapshot.version,
                "build_s": round(snapshot.built_s, 4),
                "warm_build": snapshot.warm,
            }
        return {
            "status": "accepted",
            "applied": len(deltas),
            "serving_version": self._manager.version,
            "next_version": self._builder.version + 1,
        }

    async def _rebuild(self, graph: CompanyGraph, new_edges: list[Edge] | None):
        async with self._build_lock:
            self._rebuilding += 1
            started = time.perf_counter()
            try:
                snapshot = await asyncio.get_running_loop().run_in_executor(
                    None, self._build_sync, graph, new_edges
                )
                self._manager.publish(snapshot)
                self.rebuilds += 1
                self.last_rebuild_s = time.perf_counter() - started
                return snapshot
            except BaseException:
                self.rebuild_failures += 1
                raise
            finally:
                self._rebuilding -= 1

    def _build_sync(self, graph: CompanyGraph, new_edges: list[Edge] | None):
        if self.build_delay_s:
            time.sleep(self.build_delay_s)
        return self._builder.build(graph, new_edges=new_edges)

    def stats(self) -> dict[str, Any]:
        return {
            "batches_accepted": self.batches_accepted,
            "batches_rejected": self.batches_rejected,
            "deltas_applied": self.deltas_applied,
            "rebuilds": self.rebuilds,
            "rebuild_failures": self.rebuild_failures,
            "rebuild_in_progress": self.rebuild_in_progress,
            "last_rebuild_s": round(self.last_rebuild_s, 4),
            "staging_nodes": self._staging.node_count,
            "staging_edges": self._staging.edge_count,
        }


def _required(delta: dict[str, Any], key: str) -> Any:
    value = delta.get(key)
    if value is None:
        raise MutationError(f"missing required field {key!r} for op {delta.get('op')!r}")
    return value
