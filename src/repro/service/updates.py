"""Live graph updates: deltas -> staging graph -> background re-augment.

``POST /mutations`` lands here.  The updater keeps a *staging* copy of
the company graph (the accumulated state of every accepted delta batch).
Applying a batch is two phases:

1. **validate + apply** (fast, on the event loop): the deltas run
   against a copy of the staging graph; any malformed op raises
   :class:`MutationError` and the whole batch is rejected — the staging
   graph only advances on success;
2. **rebuild + publish** (slow, in an executor thread): the snapshot
   builder re-augments the new graph — warm incremental embedding when
   the batch only *added* edges — and the manager publishes the next
   version atomically.  The previous snapshot keeps serving reads the
   whole time.

Rebuilds are serialized by an asyncio lock; a second batch accepted
during a rebuild simply queues its own rebuild, which starts from the
staging state that already includes both batches.
"""

from __future__ import annotations

import asyncio
import logging
import time
from typing import Any, Sequence

from ..graph.company_graph import COMPANY, PERSON, SHAREHOLDING, CompanyGraph
from ..graph.property_graph import GraphError
from ..telemetry import NULL_TRACER
from .incremental import DeltaBatch
from .snapshot import SnapshotBuilder, SnapshotManager

logger = logging.getLogger(__name__)

#: Delta operations accepted by :func:`apply_deltas`.
SUPPORTED_OPS = (
    "add_company",
    "add_person",
    "add_shareholding",
    "remove_shareholding",
    "remove_edge",
    "remove_node",
    "set_property",
)


class MutationError(ValueError):
    """A malformed or inapplicable mutation delta (whole batch rejected)."""


def apply_deltas(
    graph: CompanyGraph, deltas: Sequence[dict[str, Any]]
) -> DeltaBatch:
    """Apply ``deltas`` to ``graph`` in place.

    Returns a :class:`~repro.service.incremental.DeltaBatch` recording
    exactly what changed — the fuel of the incremental snapshot build.
    It still unpacks as the historical ``(new_edges, removed_any)`` pair.
    Raises :class:`MutationError` on the first bad op; callers apply to a
    throwaway copy so a failed batch leaves no trace.
    """
    batch = DeltaBatch()
    for position, delta in enumerate(deltas):
        if not isinstance(delta, dict):
            raise MutationError(f"delta #{position} is not an object")
        op = delta.get("op")
        try:
            if op == "add_company":
                node_id = _required(delta, "id")
                graph.add_company(node_id, **delta.get("properties", {}))
                batch.added_nodes.append((node_id, COMPANY))
            elif op == "add_person":
                node_id = _required(delta, "id")
                graph.add_person(node_id, **delta.get("properties", {}))
                batch.added_nodes.append((node_id, PERSON))
            elif op == "add_shareholding":
                edge = graph.add_shareholding(
                    _required(delta, "owner"),
                    _required(delta, "company"),
                    float(_required(delta, "share")),
                    **delta.get("properties", {}),
                )
                batch.new_edges.append(edge)
            elif op == "remove_shareholding":
                owner = _required(delta, "owner")
                company = _required(delta, "company")
                edges = [
                    e for e in graph.out_edges(owner, SHAREHOLDING)
                    if e.target == company
                ]
                if not edges:
                    raise MutationError(
                        f"delta #{position}: no shareholding {owner!r} -> {company!r}"
                    )
                for edge in edges:
                    batch.removed_edges.append(graph.remove_edge(edge.id))
                batch.removed_any = True
            elif op == "remove_edge":
                batch.removed_edges.append(graph.remove_edge(_required(delta, "id")))
                batch.removed_any = True
            elif op == "remove_node":
                node_id = _required(delta, "id")
                node = graph.node(node_id)
                incident = {
                    e.id: e
                    for e in list(graph.out_edges(node_id)) + list(graph.in_edges(node_id))
                }
                graph.remove_node(node_id)
                batch.removed_nodes.append((node_id, node.label))
                batch.removed_edges.extend(incident.values())
                batch.removed_any = True
            elif op == "set_property":
                # via the graph (not the node dict) so the generation
                # counter invalidates any cached columnar frame
                node_id = _required(delta, "id")
                name = _required(delta, "name")
                graph.set_property(node_id, name, delta.get("value"))
                batch.property_changes.append((node_id, graph.node(node_id).label, name))
            else:
                raise MutationError(
                    f"delta #{position}: unknown op {op!r} "
                    f"(supported: {', '.join(SUPPORTED_OPS)})"
                )
        except MutationError:
            raise
        except (GraphError, TypeError, ValueError) as exc:
            raise MutationError(f"delta #{position} ({op}): {exc}") from exc
    return batch


class GraphUpdater:
    """Applies mutation batches and publishes new snapshot versions."""

    def __init__(
        self,
        manager: SnapshotManager,
        builder: SnapshotBuilder,
        base_graph: CompanyGraph,
        tracer=None,
    ):
        self._manager = manager
        self._builder = builder
        # staging starts as the *same object* the initial snapshot was
        # built from: the first accepted batch then carries that object
        # as its base, which is what lets the builder take the
        # incremental path from version 1 on.  Safe to alias — ``apply``
        # only ever copies staging, never mutates it in place.
        self._staging = base_graph
        self._build_lock = asyncio.Lock()
        #: strong references to in-flight rebuild tasks — the event loop
        #: only keeps weak ones, so an unreferenced task could be
        #: garbage-collected mid-rebuild
        self._tasks: set[asyncio.Task] = set()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.batches_accepted = 0
        self.batches_rejected = 0
        self.deltas_applied = 0
        self.rebuilds = 0
        self.rebuild_failures = 0
        self.staging_rollbacks = 0
        self.last_rebuild_error: str | None = None
        self.last_rebuild_s = 0.0
        #: when set (a callable taking the snapshot, e.g.
        #: ``FrameStore.persist``), every published version is also
        #: written to the durable store — in the executor, *after* the
        #: in-memory publish, and non-fatally: serving never stalls or
        #: fails because a disk write did
        self.persist_hook = None
        self.persists = 0
        self.persist_failures = 0
        #: ``{"version": int, "error": str}`` of the most recent persist
        #: failure — surfaced in ``/stats`` so an operator can see *why*
        #: (and for which version) durable persistence failed
        self.last_persist_error: dict[str, Any] | None = None
        #: test / bench hook — artificial build slowdown (seconds)
        self.build_delay_s = 0.0
        self._rebuilding = 0

    @property
    def rebuild_in_progress(self) -> bool:
        return self._rebuilding > 0

    async def apply(
        self, deltas: Sequence[dict[str, Any]], wait: bool = False
    ) -> dict[str, Any]:
        """Validate and accept one mutation batch.

        Returns an ``accepted`` payload immediately (the rebuild runs in
        the background) unless ``wait`` is true, in which case the reply
        carries the newly published version.
        """
        if not deltas:
            raise MutationError("empty delta batch")
        base = self._staging
        candidate = base.copy()
        try:
            batch = apply_deltas(candidate, deltas)
        except MutationError:
            self.batches_rejected += 1
            raise
        batch.base = base
        batch.base_generation = base.generation
        self._staging = candidate
        self.batches_accepted += 1
        self.deltas_applied += len(deltas)
        task = asyncio.get_running_loop().create_task(self._rebuild(candidate, batch))
        self._tasks.add(task)
        task.add_done_callback(self._on_rebuild_done)
        if wait:
            snapshot = await task
            return {
                "status": "published",
                "applied": len(deltas),
                "version": snapshot.version,
                "build_s": round(snapshot.built_s, 4),
                "warm_build": snapshot.warm,
            }
        return {
            "status": "accepted",
            "applied": len(deltas),
            "serving_version": self._manager.version,
            "next_version": self._builder.version + 1,
        }

    def _on_rebuild_done(self, task: asyncio.Task) -> None:
        self._tasks.discard(task)
        if task.cancelled():
            return
        task.exception()  # mark retrieved; _rebuild already recorded it

    async def _rebuild(self, graph: CompanyGraph, batch: DeltaBatch):
        async with self._build_lock:
            self._rebuilding += 1
            started = time.perf_counter()
            try:
                snapshot = await asyncio.get_running_loop().run_in_executor(
                    None, self._build_sync, graph, batch
                )
                self._manager.publish(snapshot)
                self.rebuilds += 1
                self.last_rebuild_s = time.perf_counter() - started
                if self.persist_hook is not None:
                    await asyncio.get_running_loop().run_in_executor(
                        None, self._persist_sync, snapshot
                    )
                return snapshot
            except BaseException as exc:
                self.rebuild_failures += 1
                self.last_rebuild_error = repr(exc)
                with self.tracer.span("rebuild.failed", error=repr(exc)):
                    logger.exception("snapshot rebuild failed; resyncing staging")
                self._resync_staging(graph)
                raise
            finally:
                self._rebuilding -= 1

    def _resync_staging(self, failed_graph: CompanyGraph) -> None:
        """Roll staging back to the published graph after a failed build.

        Without this, a failed rebuild leaves ``_staging`` permanently
        ahead of the served snapshot: the batch was accepted, the build
        died, and every later batch keeps stacking on state that will
        never be published.  Rolling back to the served snapshot's graph
        re-synchronises accepted state with published state.  If a newer
        batch was accepted while this build ran, staging has moved on —
        that batch's own rebuild will publish (or resync) it, so we
        leave it alone.
        """
        if self._staging is not failed_graph:
            return
        try:
            current = self._manager.current
        except RuntimeError:  # nothing published yet — keep staging as is
            return
        self._staging = current.graph
        # the failed build may have half-advanced builder-side caches
        # (warm embedder, row state) — drop them so the next build
        # starts cold from a consistent base
        self._builder.reset_incremental()
        self.staging_rollbacks += 1

    def _build_sync(self, graph: CompanyGraph, batch: DeltaBatch):
        if self.build_delay_s:
            time.sleep(self.build_delay_s)
        new_edges = None if batch.removed_any else batch.new_edges
        return self._builder.build(graph, new_edges=new_edges, delta=batch)

    def _persist_sync(self, snapshot) -> None:
        try:
            self.persist_hook(snapshot)
            self.persists += 1
        except Exception as exc:
            self.persist_failures += 1
            self.last_persist_error = {
                "version": snapshot.version,
                "error": repr(exc),
            }
            with self.tracer.span("persist.failed", error=repr(exc)):
                logger.exception("durable persist of version %s failed", snapshot.version)

    def stats(self) -> dict[str, Any]:
        return {
            "batches_accepted": self.batches_accepted,
            "batches_rejected": self.batches_rejected,
            "deltas_applied": self.deltas_applied,
            "rebuilds": self.rebuilds,
            "rebuild_failures": self.rebuild_failures,
            "staging_rollbacks": self.staging_rollbacks,
            "last_rebuild_error": self.last_rebuild_error,
            "rebuild_in_progress": self.rebuild_in_progress,
            "last_rebuild_s": round(self.last_rebuild_s, 4),
            "persists": self.persists,
            "persist_failures": self.persist_failures,
            "last_persist_error": self.last_persist_error,
            "staging_nodes": self._staging.node_count,
            "staging_edges": self._staging.edge_count,
        }


def _required(delta: dict[str, Any], key: str) -> Any:
    value = delta.get(key)
    if value is None:
        raise MutationError(f"missing required field {key!r} for op {delta.get('op')!r}")
    return value
