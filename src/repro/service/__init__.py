"""The reasoning API of Section 5 — serving the KG to applications.

The paper's architecture interposes a reasoning layer between the stored
ownership knowledge graph and the enterprise applications that query it;
the Vadalog System paper frames the same layer as *reasoning as a
service*.  This package is that layer for the reproduction: a
dependency-free asyncio HTTP JSON API over immutable, versioned KG
snapshots.

* :mod:`~repro.service.snapshot` — read-optimized snapshots (augmented
  graph, control closure, close links, UBO indexes, property indexes),
  identified by a monotonically increasing version and swapped
  atomically so readers never block;
* :mod:`~repro.service.registry` — the tenant dimension: a
  :class:`GraphRegistry` maps tenant ids to their own snapshot manager,
  builder and updater, so one service hosts many isolated graphs
  (``/t/{tenant}/...`` routing; un-prefixed routes alias to the seeded
  tenant);
* :mod:`~repro.service.cache` — bounded LRU keyed by
  ``(tenant, snapshot_version, endpoint, params)`` with single-flight
  coalescing and a micro-batcher for point lookups;
* :mod:`~repro.service.server` — the stdlib asyncio HTTP/1.1 server
  with admission control (concurrency semaphore, bounded queue -> 429,
  per-request deadline -> 504) and ``/metrics`` telemetry export;
* :mod:`~repro.service.updates` — the ``POST /mutations`` path: deltas
  against a staging graph, background re-augmentation through the warm
  :class:`~repro.embeddings.IncrementalEmbedder`, atomic publish of the
  next snapshot version while the old one keeps serving;
* :mod:`~repro.service.shm` — the shared-memory snapshot codec: one
  named segment per version holding every columnar buffer and the
  precomputed row state, attached zero-copy by reader processes;
* :mod:`~repro.service.workers` — ``serve --workers N`` scale-out: N
  ``SO_REUSEPORT`` serving processes over one attached segment, the
  parent as single builder/supervisor publishing by version handoff.
"""

from .cache import LRUCache, MicroBatcher, ReasoningCache, SingleFlight
from .incremental import DeltaBatch
from .registry import (
    DEFAULT_TENANT,
    GraphRegistry,
    TenantBinding,
    TenantError,
    UnknownTenantError,
    validate_tenant,
)
from .server import HttpError, Metrics, ReasoningService, ServiceConfig, build_service
from .shm import (
    AttachedSnapshot,
    SegmentError,
    attach_snapshot,
    encode_snapshot,
    unlink_segment,
)
from .snapshot import Snapshot, SnapshotBuilder, SnapshotConfig, SnapshotManager
from .updates import GraphUpdater, MutationError, apply_deltas
from .workers import PoolConfig, PoolError, ServicePool

__all__ = [
    "AttachedSnapshot",
    "DEFAULT_TENANT",
    "DeltaBatch",
    "GraphRegistry",
    "GraphUpdater",
    "HttpError",
    "LRUCache",
    "Metrics",
    "MicroBatcher",
    "MutationError",
    "PoolConfig",
    "PoolError",
    "ReasoningCache",
    "ReasoningService",
    "SegmentError",
    "ServiceConfig",
    "ServicePool",
    "SingleFlight",
    "Snapshot",
    "SnapshotBuilder",
    "SnapshotConfig",
    "SnapshotManager",
    "TenantBinding",
    "TenantError",
    "UnknownTenantError",
    "apply_deltas",
    "attach_snapshot",
    "build_service",
    "encode_snapshot",
    "unlink_segment",
    "validate_tenant",
]
