"""The reasoning API of Section 5 — serving the KG to applications.

The paper's architecture interposes a reasoning layer between the stored
ownership knowledge graph and the enterprise applications that query it;
the Vadalog System paper frames the same layer as *reasoning as a
service*.  This package is that layer for the reproduction: a
dependency-free asyncio HTTP JSON API over immutable, versioned KG
snapshots.

* :mod:`~repro.service.snapshot` — read-optimized snapshots (augmented
  graph, control closure, close links, UBO indexes, property indexes),
  identified by a monotonically increasing version and swapped
  atomically so readers never block;
* :mod:`~repro.service.cache` — bounded LRU keyed by
  ``(snapshot_version, endpoint, params)`` with single-flight
  coalescing and a micro-batcher for point lookups;
* :mod:`~repro.service.server` — the stdlib asyncio HTTP/1.1 server
  with admission control (concurrency semaphore, bounded queue -> 429,
  per-request deadline -> 504) and ``/metrics`` telemetry export;
* :mod:`~repro.service.updates` — the ``POST /mutations`` path: deltas
  against a staging graph, background re-augmentation through the warm
  :class:`~repro.embeddings.IncrementalEmbedder`, atomic publish of the
  next snapshot version while the old one keeps serving.
"""

from .cache import LRUCache, MicroBatcher, ReasoningCache, SingleFlight
from .incremental import DeltaBatch
from .server import HttpError, Metrics, ReasoningService, ServiceConfig, build_service
from .snapshot import Snapshot, SnapshotBuilder, SnapshotConfig, SnapshotManager
from .updates import GraphUpdater, MutationError, apply_deltas

__all__ = [
    "DeltaBatch",
    "GraphUpdater",
    "HttpError",
    "LRUCache",
    "Metrics",
    "MicroBatcher",
    "MutationError",
    "ReasoningCache",
    "ReasoningService",
    "ServiceConfig",
    "SingleFlight",
    "Snapshot",
    "SnapshotBuilder",
    "SnapshotConfig",
    "SnapshotManager",
    "apply_deltas",
    "build_service",
]
