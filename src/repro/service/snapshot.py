"""Versioned, read-optimized KG snapshots.

A :class:`Snapshot` is the unit the service reads from: one immutable
view of the company KG with everything the endpoints need precomputed —
the augmentation pipeline's family links, the control closure
(Definition 2.3), the close-link pairs (Definition 2.6), the beneficial-
owner index, and a :class:`~repro.graph.GraphStore` with property
indexes over the augmented graph.  Snapshots are identified by a
monotonically increasing version; :class:`SnapshotManager` swaps the
current snapshot with one reference assignment so readers never block
and never observe a half-built state.

:class:`SnapshotBuilder` owns the version counter and — when embeddings
are enabled — a warm :class:`~repro.embeddings.IncrementalEmbedder`, so
rebuilds triggered by small mutation deltas pay the dirty-region price
instead of the full node2vec bill.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from ..core.pipeline import PipelineConfig, ReasoningPipeline
from ..embeddings.incremental import IncrementalEmbedder
from ..embeddings.node2vec import Node2VecConfig
from ..graph.columnar import GraphFrame
from ..graph.company_graph import CompanyGraph
from ..graph.property_graph import Edge, NodeId
from ..graph.store import GraphStore
from ..linkage.bayes import BayesianLinkClassifier
from ..ownership.close_links import (
    CLOSE_LINK_THRESHOLD,
    close_link_pairs,
    links_from_phi,
)
from ..ownership.control import CONTROL_THRESHOLD, control_closure, controlled_by
from ..ownership.matrix import (
    DEFAULT_MAX_UPDATE_RANK,
    integrated_ownership_from,
    try_low_rank_update,
)
from ..ownership.ubo import (
    UBO_THRESHOLD,
    BeneficialOwner,
    all_beneficial_owners,
    assemble_beneficial_owners,
    beneficial_owner_rows,
)
from ..telemetry import NULL_TRACER
from .incremental import (
    DeltaBatch,
    affected_sources,
    control_pairs_from_rows,
    control_rows,
    patch_control_rows,
    patch_phi_rows,
    patch_ubo_rows,
    phi_rows,
)

#: The tenant un-prefixed routes and single-graph callers resolve to.
#: Lives here (not in ``registry``) so the cache-key helper below can use
#: it without an import cycle — ``registry`` imports this module.
DEFAULT_TENANT = "default"


@dataclass
class SnapshotConfig:
    """What a snapshot precomputes and how the pipeline runs inside it."""

    control_threshold: float = CONTROL_THRESHOLD
    close_link_threshold: float = CLOSE_LINK_THRESHOLD
    ubo_threshold: float = UBO_THRESHOLD
    #: run personal-link detection and add the typed edges to the served
    #: graph; False serves the extensional graph plus ownership analytics
    augment: bool = True
    first_level_clusters: int = 1
    use_embeddings: bool = False
    node2vec: Node2VecConfig = field(
        default_factory=lambda: Node2VecConfig(
            dimensions=16, walk_length=10, num_walks=4, epochs=1, window=3
        )
    )
    embedding_features: "tuple[str, ...] | dict[str, float]" = field(
        default_factory=lambda: {"surname": 1.0, "address": 3.0}
    )
    #: dirty-region radius of the warm embedder between snapshot builds
    dirty_hops: int = 2
    #: path-depth bound of the procedural close-link fallback on cycles
    max_path_depth: int = 12
    #: node properties indexed in the snapshot's :class:`GraphStore`
    index_properties: tuple[str, ...] = ("name", "surname", "address")
    #: maintain snapshot relations incrementally from accepted delta
    #: batches; False is the escape hatch forcing a cold recompute of
    #: every relation on every build (the pre-incremental behaviour)
    incremental: bool = True
    #: correct the previous build's ``splu`` factorisation with a
    #: Sherman-Morrison-Woodbury update for small shareholding deltas
    #: instead of refactorising (requires ``incremental``)
    low_rank_updates: bool = True
    #: largest changed-cell count handled by a low-rank update
    max_update_rank: int = DEFAULT_MAX_UPDATE_RANK


class Snapshot:
    """One immutable, fully indexed view of the KG.

    All mutating happens *before* the snapshot is handed to the manager;
    afterwards every method is a read (custom-threshold queries compute
    on private data and leave the snapshot untouched), so a snapshot can
    be shared freely between the event loop and executor threads.

    The snapshot owns one :class:`~repro.graph.columnar.GraphFrame` over
    its base graph — the same frame the builder used — so the control,
    close-link, UBO and neighbour endpoints (and custom-threshold
    recomputations, which reach it through ``GraphFrame.of``) all share
    one set of column buffers and one cached ``splu`` factorisation.
    """

    def __init__(
        self,
        version: int,
        graph: CompanyGraph,
        augmented: CompanyGraph,
        store: GraphStore,
        config: SnapshotConfig,
        control: set[tuple[NodeId, NodeId]],
        close_links: set[tuple[NodeId, NodeId]],
        family_links: set[tuple[NodeId, NodeId, str]],
        ubo: dict[NodeId, list[BeneficialOwner]],
        built_s: float,
        warm: bool = False,
        frame: GraphFrame | None = None,
        incremental: bool = False,
    ):
        self.version = version
        #: whether this version was built by patching the previous one
        self.incremental = incremental
        self.graph = graph
        #: the columnar frame shared by every read path of this snapshot
        self.frame = frame if frame is not None else GraphFrame.of(graph)
        self.augmented = augmented
        self.store = store
        self.config = config
        self.control = control
        self.close_links = close_links
        self.family_links = family_links
        self.ubo = ubo
        self.built_s = built_s
        self.warm = warm
        self.created_at = time.time()
        self._control_by_source: dict[NodeId, list[NodeId]] = {}
        for x, y in sorted(control, key=lambda p: (str(p[0]), str(p[1]))):
            self._control_by_source.setdefault(x, []).append(y)

    # ------------------------------------------------------------------
    # endpoint payloads (all JSON-ready)
    # ------------------------------------------------------------------

    def control_payload(
        self, source: NodeId | None = None, threshold: float | None = None
    ) -> dict[str, Any]:
        t = self.config.control_threshold if threshold is None else threshold
        if t == self.config.control_threshold:
            if source is not None:
                pairs = [[source, y] for y in self._control_by_source.get(source, [])]
            else:
                pairs = sorted([x, y] for x, y in self.control)
        elif source is not None:
            pairs = sorted([source, y] for y in controlled_by(self.graph, source, t))
        else:
            pairs = sorted([x, y] for x, y in control_closure(self.graph, threshold=t))
        return {
            "version": self.version,
            "threshold": t,
            "source": source,
            "count": len(pairs),
            "pairs": pairs,
        }

    def close_links_payload(self, threshold: float | None = None) -> dict[str, Any]:
        t = self.config.close_link_threshold if threshold is None else threshold
        if t == self.config.close_link_threshold:
            links = self.close_links
        else:
            links = close_link_pairs(self.graph, t, max_depth=self.config.max_path_depth)
        pairs = sorted([x, y] for x, y in links if str(x) <= str(y))
        return {
            "version": self.version,
            "threshold": t,
            "count": len(pairs),
            "pairs": pairs,
        }

    def family_payload(self) -> dict[str, Any]:
        links = sorted([x, y, cls] for x, y, cls in self.family_links)
        return {"version": self.version, "count": len(links), "links": links}

    def ubo_payloads(
        self, companies: Sequence[NodeId], threshold: float | None = None
    ) -> dict[NodeId, dict[str, Any]]:
        """Beneficial-owner payloads for a *batch* of companies.

        At the snapshot's default threshold this reads the precomputed
        index; at a custom threshold the per-person integrated-ownership
        solves are shared across the whole batch — the reason the server
        micro-batches ``/ubo/{id}`` point lookups.
        """
        t = self.config.ubo_threshold if threshold is None else threshold
        if t == self.config.ubo_threshold:
            owners_of = {c: self.ubo.get(c, []) for c in companies}
        else:
            wanted = set(companies)
            owners_of = {c: [] for c in companies}
            for person_node in self.graph.persons():
                person = person_node.id
                integrated = integrated_ownership_from(self.graph, person)
                controlled = controlled_by(self.graph, person)
                for company in wanted:
                    share = integrated.get(company, 0.0)
                    is_controller = company in controlled
                    if share >= t or is_controller:
                        owners_of[company].append(
                            BeneficialOwner(person, company, share, is_controller)
                        )
            for company in wanted:
                owners_of[company].sort(key=lambda o: (-o.integrated_share, str(o.person)))
        return {
            company: {
                "version": self.version,
                "company": company,
                "threshold": t,
                "owners": [
                    {
                        "person": owner.person,
                        "integrated_share": round(owner.integrated_share, 6),
                        "controls": owner.controls,
                        "basis": owner.basis,
                    }
                    for owner in owners
                ],
            }
            for company, owners in owners_of.items()
        }

    def neighbors_payload(
        self, node_id: NodeId, depth: int = 1, label: str | None = None
    ) -> dict[str, Any]:
        """One node of the *augmented* graph with its incident edges."""
        graph = self.augmented
        node = graph.node(node_id)
        out_edges = [
            {"target": e.target, "label": e.label, "properties": dict(e.properties)}
            for e in graph.out_edges(node_id, label)
        ]
        in_edges = [
            {"source": e.source, "label": e.label, "properties": dict(e.properties)}
            for e in graph.in_edges(node_id, label)
        ]
        payload: dict[str, Any] = {
            "version": self.version,
            "id": node_id,
            "label": node.label,
            "properties": dict(node.properties),
            "out": out_edges,
            "in": in_edges,
        }
        if depth > 1:
            payload["reachable"] = sorted(
                self.store.expand(node_id, label, depth), key=str
            )
        return payload

    def stats_payload(self) -> dict[str, Any]:
        graph, augmented = self.graph, self.augmented
        return {
            "version": self.version,
            "warm_build": self.warm,
            "incremental_build": self.incremental,
            "built_s": round(self.built_s, 4),
            "created_at": self.created_at,
            "nodes": graph.node_count,
            "edges": graph.edge_count,
            "companies": sum(1 for _ in graph.companies()),
            "persons": sum(1 for _ in graph.persons()),
            "augmented_edges": augmented.edge_count - graph.edge_count,
            "control_pairs": len(self.control),
            "close_link_pairs": len(self.close_links),
            "family_links": len(self.family_links),
            "companies_with_ubo": len(self.ubo),
            "indexed_properties": list(self.config.index_properties),
        }


@dataclass
class _BuilderState:
    """Row-level state of the last successful build — the patch base.

    ``graph``/``generation`` identify the exact graph object and version
    the rows were derived from; a delta batch is only applied on top of
    them when its recorded base matches both (the *chain check*).  Any
    mismatch — first build, escape hatch, failed rebuild, out-of-band
    mutation — falls back to a cold build, which re-seeds the state.
    """

    graph: CompanyGraph
    generation: int
    frame: GraphFrame
    control_rows: dict[NodeId, set[NodeId]]
    phi_rows: dict[NodeId, dict[NodeId, float]]
    phi_use_dag: bool
    integrated: dict[NodeId, dict[NodeId, float]]
    controlled: dict[NodeId, set[NodeId]]
    family_links: set[tuple[NodeId, NodeId, str]]
    assignment: "dict[NodeId, int] | None"


class SnapshotBuilder:
    """Builds successive snapshot versions from company graphs.

    Holds the monotonically increasing version counter, the warm
    embedder state and — when ``config.incremental`` — the per-source
    row state of the previous build, so a build fed a
    :class:`~repro.service.incremental.DeltaBatch` patches the previous
    relations instead of recomputing them.  ``build`` is synchronous and
    CPU-bound by design — the service runs it in an executor thread
    while the event loop keeps serving the previous snapshot.  Calls
    must be serialized by the caller (the updater holds a lock); the
    builder itself is not re-entrant.
    """

    def __init__(
        self,
        config: SnapshotConfig | None = None,
        classifiers: Sequence[BayesianLinkClassifier] | None = None,
        tracer=None,
        start_version: int = 0,
    ):
        self.config = config if config is not None else SnapshotConfig()
        self.classifiers = classifiers
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # ``start_version`` seeds the counter when the service resumes
        # from a durable store: the first build then continues the
        # persisted history instead of colliding with it.
        self._version = start_version
        self._state: _BuilderState | None = None
        self._embedder: IncrementalEmbedder | None = None
        if self.config.use_embeddings and self.config.first_level_clusters > 1:
            self._embedder = self._fresh_embedder()

    def _fresh_embedder(self) -> IncrementalEmbedder:
        return IncrementalEmbedder(
            self.config.first_level_clusters,
            self.config.node2vec,
            feature_properties=self.config.embedding_features,
            dirty_hops=self.config.dirty_hops,
            tracer=self.tracer,
        )

    @property
    def version(self) -> int:
        """The last version built (0 before the first build)."""
        return self._version

    def reset_incremental(self) -> None:
        """Drop all warm state; the next build runs fully cold.

        Called by the updater after a failed rebuild: a build that died
        halfway may have advanced the warm embedder against a graph that
        will never be published, so both the row state and the embedder
        are discarded.
        """
        self._state = None
        if self._embedder is not None:
            self._embedder = self._fresh_embedder()

    def build(
        self,
        graph: CompanyGraph,
        new_edges: Sequence[Edge] | None = None,
        delta: DeltaBatch | None = None,
    ) -> Snapshot:
        """Build the next snapshot version from ``graph``.

        ``new_edges`` are the shareholding edges added since the previous
        build; when provided (and embeddings are on) the warm embedder
        re-embeds only the dirty region.  Pass ``None`` after removals —
        the warm-embedding path only models additions.

        ``delta`` is the full :class:`DeltaBatch` of the accepted
        mutation batch.  When it chains onto the previous build (its
        base is the exact graph object and generation the last state
        was derived from) and ``config.incremental`` is on, the control
        closure, close-link pairs and UBO index are *patched*: only the
        rows of sources that reach the delta are re-derived.
        """
        started = time.perf_counter()
        version = self._version + 1
        config = self.config
        warm = bool(new_edges) and self._embedder is not None
        # pin the columnar frame before any consumer runs: the embedder,
        # the pipeline, the ownership sweeps and the UBO index below all
        # resolve GraphFrame.of(graph) to this one object (same buffers,
        # one splu factorisation), and the snapshot keeps it afterwards
        frame = GraphFrame.of(graph)
        state = self._state if config.incremental else None
        incremental = (
            state is not None
            and delta is not None
            and delta.base is state.graph
            and delta.base_generation == state.generation
        )
        with self.tracer.span(
            "snapshot.build", version=version, incremental=incremental
        ) as span:
            affected: set[NodeId] | None = None
            if incremental:
                with self.tracer.span("snapshot.affected_sources"):
                    affected = affected_sources(delta, state.graph, graph)
                    span.set("affected_sources", len(affected))
                if config.low_rank_updates:
                    # correct the previous factorisation instead of
                    # refactorising when only a few W^T cells changed;
                    # on any fallback the frame just factorises lazily
                    with self.tracer.span("snapshot.low_rank_update") as lr_span:
                        adopted = try_low_rank_update(
                            state.frame, frame, max_rank=config.max_update_rank
                        )
                        lr_span.set("adopted", adopted)

            assignment = None
            if self._embedder is not None:
                with self.tracer.span("snapshot.embed", warm=warm):
                    assignment = self._embedder.embed(
                        graph, new_edges=list(new_edges) if warm else None
                    )

            family_links: set[tuple[NodeId, NodeId, str]] = set()
            if config.augment:
                if (
                    incremental
                    and assignment == state.assignment
                    and not delta.touches_family_inputs()
                ):
                    # person set, person properties, FAMILY edges and the
                    # cluster assignment are all unchanged — the pipeline
                    # would re-derive exactly the previous links
                    family_links = state.family_links
                else:
                    pipeline = ReasoningPipeline(
                        graph,
                        PipelineConfig(
                            control_threshold=config.control_threshold,
                            close_link_threshold=config.close_link_threshold,
                            first_level_clusters=config.first_level_clusters,
                            use_embeddings=config.use_embeddings,
                            node2vec=config.node2vec,
                            embedding_features=config.embedding_features,
                            max_path_depth=config.max_path_depth,
                        ),
                        classifiers=self.classifiers,
                        tracer=self.tracer,
                        cluster_assignment=assignment,
                    )
                    family_links = pipeline.family_links()

            with self.tracer.span("snapshot.control"):
                if incremental:
                    c_rows = patch_control_rows(
                        state.control_rows,
                        state.graph,
                        graph,
                        delta,
                        config.control_threshold,
                        affected=affected,
                    )
                    control = control_pairs_from_rows(c_rows)
                elif config.incremental:
                    c_rows = control_rows(graph, config.control_threshold)
                    control = control_pairs_from_rows(c_rows)
                else:
                    c_rows = None
                    control = set(
                        control_closure(graph, threshold=config.control_threshold)
                    )
            with self.tracer.span("snapshot.close_links"):
                if incremental:
                    p_rows, use_dag = patch_phi_rows(
                        state.phi_rows,
                        state.phi_use_dag,
                        state.graph,
                        graph,
                        delta,
                        config.max_path_depth,
                        affected=affected,
                    )
                elif config.incremental:
                    p_rows, use_dag = phi_rows(graph, config.max_path_depth)
                else:
                    p_rows, use_dag = None, False
                if p_rows is not None:
                    company_ids = {node.id for node in graph.companies()}
                    close = {
                        (link.x, link.y)
                        for link in links_from_phi(
                            p_rows, company_ids, config.close_link_threshold
                        )
                    }
                else:
                    close = set(
                        close_link_pairs(
                            graph,
                            config.close_link_threshold,
                            max_depth=config.max_path_depth,
                        )
                    )
            with self.tracer.span("snapshot.ubo"):
                # the UBO index pairs integrated ownership with control at
                # the *definitional* vote-majority threshold, independent
                # of the snapshot's configurable control relation
                if incremental:
                    integrated, controlled = patch_ubo_rows(
                        state.integrated,
                        state.controlled,
                        state.graph,
                        graph,
                        delta,
                        CONTROL_THRESHOLD,
                        affected=affected,
                    )
                    ubo = assemble_beneficial_owners(
                        graph, integrated, controlled, config.ubo_threshold
                    )
                elif config.incremental:
                    integrated, controlled = beneficial_owner_rows(
                        graph, CONTROL_THRESHOLD
                    )
                    ubo = assemble_beneficial_owners(
                        graph, integrated, controlled, config.ubo_threshold
                    )
                else:
                    integrated, controlled = None, None
                    ubo = all_beneficial_owners(graph, config.ubo_threshold)

            with self.tracer.span("snapshot.materialise"):
                augmented = graph.copy()

                def add(x: NodeId, y: NodeId, label: str) -> None:
                    if augmented.has_node(x) and augmented.has_node(y):
                        augmented.add_edge(x, y, label)

                for x, y, link_class in family_links:
                    add(x, y, link_class)
                for x, y in control:
                    add(x, y, "control")
                for x, y in close:
                    add(x, y, "close_link")

                store = GraphStore(augmented)
                for prop in config.index_properties:
                    store.ensure_index(prop)

            span.set("control_pairs", len(control))
            span.set("close_link_pairs", len(close))
            span.set("family_links", len(family_links))

        if config.incremental:
            self._state = _BuilderState(
                graph=graph,
                generation=graph.generation,
                frame=frame,
                control_rows=c_rows,
                phi_rows=p_rows,
                phi_use_dag=use_dag,
                integrated=integrated,
                controlled=controlled,
                family_links=family_links,
                assignment=assignment,
            )
        else:
            self._state = None
        self._version = version
        return Snapshot(
            version=version,
            graph=graph,
            augmented=augmented,
            store=store,
            config=config,
            control=control,
            close_links=close,
            family_links=family_links,
            ubo=ubo,
            built_s=time.perf_counter() - started,
            warm=warm,
            frame=frame,
            incremental=incremental,
        )


class SnapshotManager:
    """Holds the currently served snapshot; publish is an atomic swap.

    Reads (``current``) are a single attribute load — safe from any
    thread, never blocking.  ``publish`` enforces version monotonicity
    under a lock (builds run in executor threads) and records how long
    the swap itself took, which the benchmark reports as the
    snapshot-swap pause.
    """

    def __init__(self, snapshot: Snapshot | None = None):
        self._lock = threading.Lock()
        self._current = snapshot
        self.swaps = 0
        self.last_swap_pause_s = 0.0

    @property
    def current(self) -> Snapshot:
        snapshot = self._current
        if snapshot is None:
            raise RuntimeError("no snapshot published yet")
        return snapshot

    @property
    def version(self) -> int:
        snapshot = self._current
        return 0 if snapshot is None else snapshot.version

    def publish(self, snapshot: Snapshot) -> Snapshot:
        """Atomically make ``snapshot`` the served version."""
        with self._lock:
            started = time.perf_counter()
            current = self._current
            if current is not None and snapshot.version <= current.version:
                raise ValueError(
                    f"snapshot version {snapshot.version} is not newer than "
                    f"served version {current.version}"
                )
            self._current = snapshot
            self.swaps += 1
            self.last_swap_pause_s = time.perf_counter() - started
        return snapshot


def snapshot_key(
    version: int, endpoint: str, params: Iterable[Any], tenant: str = DEFAULT_TENANT
) -> tuple[str, int, str, tuple[Any, ...]]:
    """The canonical cache key: ``(tenant, snapshot_version, endpoint, params)``.

    The tenant leads the key on purpose: two tenants whose graphs collide
    in node ids *and* version numbers (the adversarial case the isolation
    tests construct) still occupy disjoint LRU / single-flight keyspaces.
    """
    return (tenant, version, endpoint, tuple(params))
