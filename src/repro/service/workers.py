"""SO_REUSEPORT worker-pool serving over shared-memory snapshots.

One process cannot outrun its GIL, so scale-out runs N copies of the
asyncio server (``repro.service.server``) as separate processes, all
listening on the **same** port via ``SO_REUSEPORT`` — the kernel
load-balances accepted connections across the listening sockets, no
userspace proxy involved.  What makes N processes cheap is the segment
codec (``repro.service.shm``): every worker attaches the same read-only
shared-memory snapshot, so the heavy columnar buffers exist once in
physical memory no matter how many workers serve them.

Topology::

    parent (ServicePool)                     worker i (x N)
    ------------------------                 -----------------------------
    builds snapshots (one lineage            attaches segments (zero-copy),
    per tenant), seals segments,             binds each to its tenant in a
    supervises workers,        == Pipe ==>   GraphRegistry, runs a
    serializes mutations and   <== Pipe ==   ReasoningService with
    tenant admin, merges                     reuse_port=True, forwards
    metrics                                  mutations + tenant admin

The parent is the **single builder** for every tenant: it owns each
tenant's staging graph and incremental :class:`SnapshotBuilder`, applies
mutation batches one at a time, seals each new version into a fresh
segment (the segment name and TOC carry the tenant), and publishes by
*version handoff* — a ``publish`` message naming the tenant and the
segment.  Workers attach the new segment, swap **that tenant's**
:class:`SnapshotManager` atomically (readers in flight keep the old
snapshot via their reference — no torn reads; other tenants' managers
are untouched), acknowledge, and retire the old attachment.  Retirement
is refcount-safe by construction: ``SharedMemory.close`` raises
``BufferError`` while any numpy view into the mapping is still alive,
so each worker just retries the close until its in-flight readers are
done, then reports ``released``; the parent unlinks a segment only
after every worker that attached it has released it (a crashed worker
counts as released — the kernel dropped its maps).

Tenant admin from any worker (``PUT/DELETE /t/{tenant}``) is forwarded
to the parent, which creates (or retires) the tenant fleet-wide so every
worker serves the same tenant set.

Failure handling: the parent supervises worker processes and restarts a
crashed worker against the current segment set (bounded by
``PoolConfig.restart_limit``); ``SIGTERM`` triggers a graceful drain —
workers stop accepting, finish in-flight requests, and exit before the
parent unlinks the segments.
"""

from __future__ import annotations

import asyncio
import itertools
import logging
import multiprocessing
import multiprocessing.connection
import os
import socket
import threading
import time
from dataclasses import dataclass
from typing import Any, Sequence

from ..graph.company_graph import CompanyGraph
from ..linkage.bayes import BayesianLinkClassifier
from ..telemetry import NULL_TRACER
from . import shm as shm_codec
from .registry import GraphRegistry, TenantError, UnknownTenantError, validate_tenant
from .server import Metrics, ReasoningService, ServiceConfig
from .snapshot import (
    DEFAULT_TENANT,
    Snapshot,
    SnapshotBuilder,
    SnapshotConfig,
    SnapshotManager,
)
from .updates import MutationError, apply_deltas

logger = logging.getLogger(__name__)


@dataclass
class PoolConfig:
    """Knobs of the worker pool itself (the HTTP knobs live in
    :class:`ServiceConfig`)."""

    #: restarts allowed per worker slot before the slot is abandoned
    restart_limit: int = 3
    #: how long the parent waits for every worker to attach a new version
    publish_timeout_s: float = 60.0
    #: how long the parent waits for the initial worker fleet to come up
    start_timeout_s: float = 120.0
    #: graceful-drain budget on stop/SIGTERM
    drain_timeout_s: float = 10.0
    #: retry cadence of the worker-side retired-segment close sweep
    sweep_interval_s: float = 0.2
    #: multiprocessing start method; fork is fastest on Linux, and all
    #: worker arguments are picklable so spawn works where fork doesn't
    start_method: str = "fork"


class PoolError(RuntimeError):
    """The pool could not reach or keep its requested worker fleet."""


@dataclass
class _PoolTenant:
    """Parent-side build state of one tenant: its staging graph, its
    incremental builder, and the oracle snapshot equal to what the
    workers serve for it."""

    name: str
    staging: CompanyGraph
    builder: SnapshotBuilder
    oracle: Snapshot | None = None
    current_version: int = 0


# ======================================================================
# parent side
# ======================================================================


class ServicePool:
    """N SO_REUSEPORT serving processes + this process as the builder.

    ``start()`` builds snapshot v1 of every seeded tenant, seals each
    into a shared segment, reserves the port, launches the workers, and
    returns once every worker accepts connections.  ``oracle`` always
    holds the in-process :class:`Snapshot` equal to what the workers
    serve for the *primary* tenant (the one un-prefixed routes alias
    to) — the benchmark and the race tests assert per-row response
    identity against it; ``oracle_for(tenant)`` is the per-tenant view.
    """

    def __init__(
        self,
        graph: CompanyGraph,
        workers: int,
        config: ServiceConfig | None = None,
        snapshot_config: SnapshotConfig | None = None,
        classifiers: Sequence[BayesianLinkClassifier] | None = None,
        tracer=None,
        pool_config: PoolConfig | None = None,
        start_version: int = 0,
        initial_snapshot: Snapshot | None = None,
        persist_hook=None,
        tenant: str = DEFAULT_TENANT,
        initial_snapshots: dict[str, Snapshot] | None = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        validate_tenant(tenant)
        self.requested_workers = workers
        self.config = config if config is not None else ServiceConfig()
        self.pool_config = pool_config if pool_config is not None else PoolConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._snapshot_config = snapshot_config
        self._classifiers = classifiers
        #: the tenant un-prefixed routes resolve to on every worker
        self.primary = tenant
        self._tenants: dict[str, _PoolTenant] = {
            tenant: _PoolTenant(
                name=tenant,
                staging=graph,
                builder=SnapshotBuilder(
                    snapshot_config, classifiers=classifiers, tracer=self.tracer,
                    start_version=start_version,
                ),
            )
        }
        #: pre-built snapshot adopted by ``start()`` instead of a cold
        #: build — how ``serve --store --workers N`` boots from a durable
        #: attach.  Not re-persisted (it came from the store).
        self._initial_snapshot = initial_snapshot
        #: additional tenants booted from durable snapshots
        #: (``serve --store`` restart attaching every tenant's latest)
        self._initial_snapshots = dict(initial_snapshots or {})
        self._initial_snapshots.pop(tenant, None)
        #: callable(snapshot, tenant) persisting each freshly built
        #: version (e.g. wrapping ``FrameStore.persist``); failures are
        #: counted, not fatal
        self.persist_hook = persist_hook
        self.persists = 0
        self.persist_failures = 0
        self.last_persist_error: dict[str, Any] | None = None
        self._ctx = multiprocessing.get_context(self.pool_config.start_method)
        self._procs: dict[int, multiprocessing.process.BaseProcess] = {}
        self._conns: dict[int, multiprocessing.connection.Connection] = {}
        self._restarts: dict[int, int] = {}
        self.restarts = 0
        #: segment bookkeeping: (tenant, version) -> creator handle /
        #: name / attached workers
        self._segments: dict[tuple[str, int], Any] = {}
        self._segment_names: dict[tuple[str, int], str] = {}
        self._attached: dict[tuple[str, int], set[int]] = {}
        self._segment_seq = itertools.count(1)
        #: worker -> last primary-tenant version it acknowledged
        self.worker_versions: dict[int, int] = {}
        #: worker -> {tenant: version} across every tenant it serves
        self.worker_tenant_versions: dict[int, dict[str, int]] = {}
        #: worker -> (attach_s, swap_pause_s) of its last publish swap
        self.last_swap: dict[int, dict[str, float]] = {}
        self._lock = threading.RLock()
        self._mutate_lock = threading.Lock()
        self._publish_events: dict[tuple[str, int], threading.Event] = {}
        self._metric_replies: dict[int, dict[int, Any]] = {}
        self._metric_events: dict[int, threading.Event] = {}
        self._request_seq = 0
        self._reserve_sock: socket.socket | None = None
        self._supervisor: threading.Thread | None = None
        self._stopping = threading.Event()
        self.port: int | None = None

    # -- lifecycle -----------------------------------------------------

    @property
    def _builder(self) -> SnapshotBuilder:
        """The primary tenant's builder (kept for pre-tenancy callers)."""
        return self._tenants[self.primary].builder

    @property
    def oracle(self) -> Snapshot:
        """The in-process snapshot identical to what workers serve for
        the primary tenant."""
        return self.oracle_for(self.primary)

    def oracle_for(self, tenant: str) -> Snapshot:
        state = self._tenants.get(tenant)
        if state is None:
            raise UnknownTenantError(tenant)
        if state.oracle is None:
            raise PoolError("pool not started")
        return state.oracle

    @property
    def version(self) -> int:
        return self._tenants[self.primary].current_version

    def version_for(self, tenant: str) -> int:
        state = self._tenants.get(tenant)
        if state is None:
            raise UnknownTenantError(tenant)
        return state.current_version

    def tenants(self) -> list[str]:
        with self._lock:
            return sorted(self._tenants)

    def live_workers(self) -> list[int]:
        with self._lock:
            return sorted(
                w for w, p in self._procs.items() if p.is_alive() and w in self._conns
            )

    def segment_names(self) -> list[str]:
        """Names of segments the pool still holds (leak check hook)."""
        with self._lock:
            return [self._segment_names[k] for k in sorted(self._segments)]

    def start(self) -> "ServicePool":
        primary = self._tenants[self.primary]
        if self._initial_snapshot is not None:
            snapshot = self._initial_snapshot
        else:
            snapshot = primary.builder.build(primary.staging)
            self._persist(snapshot, self.primary)
        self._adopt_version(self.primary, snapshot)
        for name, extra in self._initial_snapshots.items():
            validate_tenant(name)
            self._tenants[name] = _PoolTenant(
                name=name,
                staging=extra.graph,
                builder=SnapshotBuilder(
                    self._snapshot_config, classifiers=self._classifiers,
                    tracer=self.tracer, start_version=extra.version,
                ),
            )
            self._adopt_version(name, extra)
        self._reserve_port()
        for worker_id in range(self.requested_workers):
            self._spawn(worker_id)
        self._supervisor = threading.Thread(
            target=self._supervise, name="pool-supervisor", daemon=True
        )
        self._supervisor.start()
        deadline = time.monotonic() + self.pool_config.start_timeout_s
        while True:
            with self._lock:
                current = self.version
                ready = [
                    w
                    for w in range(self.requested_workers)
                    if self.worker_versions.get(w) == current
                ]
            if len(ready) == self.requested_workers:
                return self
            if time.monotonic() >= deadline:
                self.stop(drain=False)
                raise PoolError(
                    f"only {len(ready)}/{self.requested_workers} workers came up "
                    f"within {self.pool_config.start_timeout_s}s"
                )
            time.sleep(0.01)

    def _persist(self, snapshot: Snapshot, tenant: str) -> None:
        if self.persist_hook is None:
            return
        try:
            self.persist_hook(snapshot, tenant)
            self.persists += 1
        except Exception as exc:
            self.persist_failures += 1
            self.last_persist_error = {
                "tenant": tenant,
                "version": snapshot.version,
                "error": repr(exc),
            }
            logger.exception(
                "durable persist of tenant %s version %s failed",
                tenant, snapshot.version,
            )

    def _segment_name(self, tenant: str, version: int) -> str:
        # deterministic prefix (leak checks grep for it) + a sequence
        # number so a tenant re-created after deletion can reuse version
        # numbers while its old segment is still draining
        return f"rkgs_{tenant}_v{version}_{os.getpid()}_{next(self._segment_seq)}"

    def _adopt_version(self, tenant: str, snapshot: Snapshot) -> None:
        segment = shm_codec.encode_snapshot(
            snapshot, name=self._segment_name(tenant, snapshot.version), tenant=tenant
        )
        state = self._tenants[tenant]
        with self._lock:
            key = (tenant, snapshot.version)
            self._segments[key] = segment
            self._segment_names[key] = segment.name
            self._attached[key] = set()
            previous = state.current_version
            state.current_version = snapshot.version
            state.oracle = snapshot
        if previous:
            self._maybe_unlink((tenant, previous))

    def _reserve_port(self) -> None:
        """Pin the port with a bound (never listening) SO_REUSEPORT socket.

        With ``port=0`` this is what picks the ephemeral port all workers
        then share; because the socket never listens, the kernel balances
        incoming connections over the workers only.
        """
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((self.config.host, self.config.port))
        self._reserve_sock = sock
        self.port = sock.getsockname()[1]

    def _spawn(self, worker_id: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        config = ServiceConfig(**{**self.config.__dict__, "port": self.port})
        with self._lock:
            segments = {
                name: (
                    self._segment_names[(name, state.current_version)],
                    state.current_version,
                )
                for name, state in self._tenants.items()
            }
        proc = self._ctx.Process(
            target=_worker_main,
            args=(
                worker_id,
                child_conn,
                config,
                segments,
                self.primary,
                self.pool_config.sweep_interval_s,
            ),
            name=f"repro-serve-{worker_id}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        with self._lock:
            self._procs[worker_id] = proc
            self._conns[worker_id] = parent_conn

    def stop(self, drain: bool = True) -> None:
        """Shut the pool down; with ``drain`` workers finish in-flight
        requests (bounded by ``drain_timeout_s``) before exiting."""
        self._stopping.set()
        with self._lock:
            conns = dict(self._conns)
        if drain:
            for conn in conns.values():
                _try_send(conn, {"op": "drain", "timeout_s": self.pool_config.drain_timeout_s})
            deadline = time.monotonic() + self.pool_config.drain_timeout_s + 2.0
            for proc in list(self._procs.values()):
                proc.join(timeout=max(0.0, deadline - time.monotonic()))
        for conn in conns.values():
            _try_send(conn, {"op": "stop"})
        for proc in list(self._procs.values()):
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
        with self._lock:
            for conn in self._conns.values():
                try:
                    conn.close()
                except OSError:
                    pass
            self._conns.clear()
            self._procs.clear()
            keys = list(self._segments)
        for key in keys:
            self._unlink(key)
        if self._reserve_sock is not None:
            self._reserve_sock.close()
            self._reserve_sock = None
        if self._supervisor is not None:
            self._supervisor.join(timeout=2.0)
            self._supervisor = None

    def __enter__(self) -> "ServicePool":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- mutations: the parent is the single builder -------------------

    def mutate(
        self,
        deltas: Sequence[dict[str, Any]],
        wait: bool = True,
        tenant: str | None = None,
    ) -> dict[str, Any]:
        """Apply one mutation batch to ``tenant`` (primary when omitted),
        build, seal, publish to all workers.

        Mirrors :class:`GraphUpdater` semantics (staging copy, whole-batch
        validation, incremental build) but runs synchronously in the
        parent — the pool serializes batches, workers only forward.
        Other tenants' versions are untouched.
        """
        if not deltas:
            raise MutationError("empty delta batch")
        name = tenant if tenant is not None else self.primary
        with self._mutate_lock:
            state = self._tenants.get(name)
            if state is None:
                raise UnknownTenantError(name)
            base = state.staging
            candidate = base.copy()
            batch = apply_deltas(candidate, deltas)  # MutationError -> 400 upstream
            batch.base = base
            batch.base_generation = base.generation
            new_edges = None if batch.removed_any else batch.new_edges
            started = time.perf_counter()
            snapshot = state.builder.build(candidate, new_edges=new_edges, delta=batch)
            state.staging = candidate
            self._adopt_version(name, snapshot)
            self._persist(snapshot, name)
            published = self._await_fleet(name, snapshot.version)
            return {
                "status": "published",
                "applied": len(deltas),
                "tenant": name,
                "version": snapshot.version,
                "build_s": round(time.perf_counter() - started, 4),
                "warm_build": snapshot.warm,
                "workers_attached": published,
            }

    # -- tenant admin: the parent owns the tenant set ------------------

    def create_tenant(self, name: str) -> tuple[int, dict[str, Any]]:
        """Create an empty tenant fleet-wide; idempotent.

        Returns ``(http_status, payload)`` — the reply of the worker's
        forwarded ``PUT /t/{tenant}``.
        """
        validate_tenant(name)
        with self._mutate_lock:
            state = self._tenants.get(name)
            if state is not None:
                return 200, {
                    "status": "exists",
                    "tenant": name,
                    "version": state.current_version,
                }
            graph = CompanyGraph()
            builder = SnapshotBuilder(
                self._snapshot_config, classifiers=self._classifiers,
                tracer=self.tracer,
            )
            snapshot = builder.build(graph)
            self._tenants[name] = _PoolTenant(
                name=name, staging=graph, builder=builder
            )
            self._adopt_version(name, snapshot)
            self._persist(snapshot, name)
            self._await_fleet(name, snapshot.version)
            return 201, {
                "status": "created",
                "tenant": name,
                "version": snapshot.version,
                "workers": self.live_workers(),
            }

    def delete_tenant(self, name: str) -> tuple[int, dict[str, Any]]:
        """Drop a tenant fleet-wide (the primary tenant is protected)."""
        if name == self.primary:
            return 400, {"error": f"cannot delete the alias tenant {name!r}"}
        with self._mutate_lock:
            state = self._tenants.pop(name, None)
            if state is None:
                return 404, {"error": f"unknown tenant: {name}"}
            version = state.current_version
            with self._lock:
                conns = dict(self._conns)
            for conn in conns.values():
                _try_send(conn, {"op": "retire_tenant", "tenant": name})
            # workers drop the binding immediately (404s start now) and
            # release the segment once their in-flight reads finish; the
            # release messages drive the unlink.  Dropping the oracle
            # here lets the parent-side views die with it.
            self._maybe_unlink((name, version))
            return 200, {"status": "deleted", "tenant": name, "version": version}

    def _await_fleet(self, tenant: str, version: int) -> list[int]:
        """Broadcast ``publish`` and wait until every live worker swapped."""
        event = threading.Event()
        key = (tenant, version)
        with self._lock:
            self._publish_events[key] = event
            conns = dict(self._conns)
            name = self._segment_names[key]
        for conn in conns.values():
            _try_send(
                conn,
                {"op": "publish", "tenant": tenant, "name": name, "version": version},
            )
        deadline = time.monotonic() + self.pool_config.publish_timeout_s
        while not self._fleet_attached(key):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                with self._lock:
                    attached = sorted(self._attached.get(key, ()))
                raise PoolError(
                    f"tenant {tenant} version {version} reached only workers "
                    f"{attached} within {self.pool_config.publish_timeout_s}s"
                )
            event.wait(timeout=min(remaining, 0.05))
            event.clear()
        with self._lock:
            self._publish_events.pop(key, None)
            return sorted(self._attached.get(key, ()))

    def _fleet_attached(self, key: tuple[str, int]) -> bool:
        with self._lock:
            live = {
                w for w, p in self._procs.items() if p.is_alive() and w in self._conns
            }
            return live <= self._attached.get(key, set()) and bool(live)

    # -- metrics aggregation -------------------------------------------

    def cluster_metrics(self, timeout_s: float = 5.0) -> dict[str, Any]:
        """Merged per-worker counters + supervisor state (the payload of
        ``GET /metrics?scope=cluster`` on any worker)."""
        with self._lock:
            self._request_seq += 1
            request_id = self._request_seq
            self._metric_replies[request_id] = {}
            event = self._metric_events[request_id] = threading.Event()
            conns = dict(self._conns)
        for conn in conns.values():
            _try_send(conn, {"op": "metrics?", "id": request_id})
        deadline = time.monotonic() + timeout_s
        while True:
            with self._lock:
                replies = self._metric_replies[request_id]
                live = set(self.live_workers())
                done = live <= set(replies)
            if done or time.monotonic() >= deadline:
                break
            event.wait(timeout=0.05)
            event.clear()
        with self._lock:
            replies = self._metric_replies.pop(request_id)
            self._metric_events.pop(request_id, None)
            worker_versions = dict(self.worker_versions)
            worker_tenant_versions = {
                w: dict(v) for w, v in self.worker_tenant_versions.items()
            }
            last_swap = {w: dict(s) for w, s in self.last_swap.items()}
            tenant_versions = {
                name: state.current_version
                for name, state in self._tenants.items()
            }
        ordered = [replies[w] for w in sorted(replies)]
        return {
            "scope": "cluster",
            "workers": sorted(replies),
            "snapshot_version": self.version,
            "primary_tenant": self.primary,
            "tenants": tenant_versions,
            "worker_versions": worker_versions,
            "worker_tenant_versions": worker_tenant_versions,
            "restarts": self.restarts,
            "last_swap": last_swap,
            "segments": self.segment_names(),
            "merged": Metrics.merge([p for p in ordered if isinstance(p, dict)]),
            "per_worker": {w: replies[w] for w in sorted(replies)},
        }

    # -- supervision ---------------------------------------------------

    def _supervise(self) -> None:
        while not self._stopping.is_set():
            with self._lock:
                conns = dict(self._conns)
                sentinels = {p.sentinel: w for w, p in self._procs.items()}
            waitable = list(conns.values()) + list(sentinels)
            if not waitable:
                return
            try:
                ready = multiprocessing.connection.wait(waitable, timeout=0.25)
            except OSError:
                continue
            for item in ready:
                if isinstance(item, multiprocessing.connection.Connection):
                    worker_id = next(
                        (w for w, c in conns.items() if c is item), None
                    )
                    if worker_id is None:
                        continue
                    try:
                        message = item.recv()
                    except (EOFError, OSError):
                        self._on_worker_gone(worker_id)
                        continue
                    self._on_message(worker_id, message)
                else:  # a process sentinel became ready: the worker died
                    self._on_worker_gone(sentinels[item])

    def _on_message(self, worker_id: int, message: dict[str, Any]) -> None:
        op = message.get("op")
        if op == "ready":
            versions: dict[str, int] = message.get("versions") or {}
            with self._lock:
                for tenant, version in versions.items():
                    self._attached.setdefault((tenant, version), set()).add(worker_id)
                    self.worker_tenant_versions.setdefault(worker_id, {})[tenant] = version
                if self.primary in versions:
                    self.worker_versions[worker_id] = versions[self.primary]
                events = [
                    self._publish_events.get((t, v)) for t, v in versions.items()
                ]
            for event in events:
                if event is not None:
                    event.set()
        elif op == "attached":
            tenant = message.get("tenant", self.primary)
            version = message["version"]
            with self._lock:
                self._attached.setdefault((tenant, version), set()).add(worker_id)
                self.worker_tenant_versions.setdefault(worker_id, {})[tenant] = version
                if tenant == self.primary:
                    self.worker_versions[worker_id] = version
                self.last_swap[worker_id] = {
                    "attach_s": message.get("attach_s", 0.0),
                    "swap_pause_s": message.get("swap_pause_s", 0.0),
                }
                event = self._publish_events.get((tenant, version))
            if event is not None:
                event.set()
        elif op == "released":
            tenant = message.get("tenant", self.primary)
            version = message["version"]
            with self._lock:
                self._attached.get((tenant, version), set()).discard(worker_id)
            self._maybe_unlink((tenant, version))
        elif op == "retired_tenant":
            tenant = message["tenant"]
            with self._lock:
                self.worker_tenant_versions.get(worker_id, {}).pop(tenant, None)
        elif op == "metrics":
            request_id = message.get("id")
            with self._lock:
                replies = self._metric_replies.get(request_id)
                if replies is not None:
                    replies[worker_id] = message.get("payload")
                event = self._metric_events.get(request_id)
            if event is not None:
                event.set()
        elif op == "mutate":
            threading.Thread(
                target=self._handle_forwarded_mutation,
                args=(worker_id, message),
                daemon=True,
            ).start()
        elif op == "admin":
            threading.Thread(
                target=self._handle_forwarded_admin,
                args=(worker_id, message),
                daemon=True,
            ).start()
        elif op == "metrics_cluster?":
            threading.Thread(
                target=self._handle_cluster_metrics,
                args=(worker_id, message),
                daemon=True,
            ).start()

    def _handle_forwarded_mutation(self, worker_id: int, message: dict[str, Any]) -> None:
        request_id = message.get("id")
        try:
            result = self.mutate(
                message.get("deltas") or [],
                wait=True,
                tenant=message.get("tenant"),
            )
            reply = {"op": "mutate_result", "id": request_id, "status": 200, "payload": result}
        except MutationError as exc:
            reply = {
                "op": "mutate_result",
                "id": request_id,
                "status": 400,
                "payload": {"error": str(exc)},
            }
        except UnknownTenantError as exc:
            reply = {
                "op": "mutate_result",
                "id": request_id,
                "status": 404,
                "payload": {"error": str(exc)},
            }
        except Exception as exc:  # noqa: BLE001 - worker must get an answer
            logger.exception("forwarded mutation failed")
            reply = {
                "op": "mutate_result",
                "id": request_id,
                "status": 500,
                "payload": {"error": f"{type(exc).__name__}: {exc}"},
            }
        with self._lock:
            conn = self._conns.get(worker_id)
        if conn is not None:
            _try_send(conn, reply)

    def _handle_forwarded_admin(self, worker_id: int, message: dict[str, Any]) -> None:
        request_id = message.get("id")
        action = message.get("action")
        tenant = message.get("tenant", "")
        try:
            if action == "create":
                status, payload = self.create_tenant(tenant)
            elif action == "delete":
                status, payload = self.delete_tenant(tenant)
            else:
                status, payload = 400, {"error": f"unknown admin action {action!r}"}
        except TenantError as exc:
            status, payload = 400, {"error": str(exc)}
        except Exception as exc:  # noqa: BLE001 - worker must get an answer
            logger.exception("forwarded tenant admin failed")
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        with self._lock:
            conn = self._conns.get(worker_id)
        if conn is not None:
            _try_send(
                conn,
                {
                    "op": "admin_result",
                    "id": request_id,
                    "status": status,
                    "payload": payload,
                },
            )

    def _handle_cluster_metrics(self, worker_id: int, message: dict[str, Any]) -> None:
        payload = self.cluster_metrics()
        with self._lock:
            conn = self._conns.get(worker_id)
        if conn is not None:
            _try_send(
                conn,
                {"op": "metrics_cluster", "id": message.get("id"), "payload": payload},
            )

    def _on_worker_gone(self, worker_id: int) -> None:
        with self._lock:
            if worker_id not in self._procs and worker_id not in self._conns:
                return  # sentinel + pipe EOF both fired; already handled
            proc = self._procs.pop(worker_id, None)
            conn = self._conns.pop(worker_id, None)
            self.worker_versions.pop(worker_id, None)
            self.worker_tenant_versions.pop(worker_id, None)
            # the kernel unmapped the dead worker's segments: that IS a release
            touched = [k for k, who in self._attached.items() if worker_id in who]
            for key in touched:
                self._attached[key].discard(worker_id)
            restarts = self._restarts.get(worker_id, 0)
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
        for key in touched:
            self._maybe_unlink(key)
        if proc is not None:
            proc.join(timeout=0.5)
        if self._stopping.is_set():
            return
        if restarts >= self.pool_config.restart_limit:
            logger.error(
                "worker %d exceeded restart limit (%d); slot abandoned",
                worker_id,
                self.pool_config.restart_limit,
            )
            return
        logger.warning("worker %d died; restarting", worker_id)
        with self._lock:
            self._restarts[worker_id] = restarts + 1
            self.restarts += 1
        self._spawn(worker_id)

    # -- segment retirement --------------------------------------------

    def _maybe_unlink(self, key: tuple[str, int]) -> None:
        tenant, version = key
        with self._lock:
            state = self._tenants.get(tenant)
            # a dropped tenant's segments are all retired; a live
            # tenant's current version never is
            retired = state is None or version != state.current_version
            unreferenced = not self._attached.get(key)
        if retired and unreferenced:
            self._unlink(key)

    def _unlink(self, key: tuple[str, int]) -> None:
        with self._lock:
            segment = self._segments.pop(key, None)
            self._segment_names.pop(key, None)
            self._attached.pop(key, None)
        if segment is None:
            return
        try:
            segment.unlink()
        except FileNotFoundError:
            pass
        try:
            segment.close()
        except BufferError:  # parent still holds views (oracle frame): harmless,
            pass  # the kernel frees the pages once the mapping dies with us


def _try_send(conn: multiprocessing.connection.Connection, message: dict[str, Any]) -> bool:
    try:
        conn.send(message)
        return True
    except (BrokenPipeError, OSError):
        return False


# ======================================================================
# worker side
# ======================================================================


def _worker_main(
    worker_id: int,
    conn: multiprocessing.connection.Connection,
    config: ServiceConfig,
    segments: dict[str, tuple[str, int]],
    primary: str,
    sweep_interval_s: float,
) -> None:
    """Entry point of one serving process (must stay picklable for spawn)."""
    import signal

    signal.signal(signal.SIGINT, signal.SIG_IGN)  # parent coordinates shutdown
    try:
        asyncio.run(
            _Worker(
                worker_id, conn, config, segments, primary, sweep_interval_s
            ).run()
        )
    except Exception:  # pragma: no cover - crash path exercised via kill tests
        logger.exception("worker %d crashed", worker_id)
        raise
    finally:
        try:
            conn.close()
        except OSError:
            pass


class _Worker:
    """Asyncio half of a serving process: HTTP + the control channel."""

    def __init__(
        self,
        worker_id: int,
        conn: multiprocessing.connection.Connection,
        config: ServiceConfig,
        segments: dict[str, tuple[str, int]],
        primary: str,
        sweep_interval_s: float,
    ):
        self.worker_id = worker_id
        self.conn = conn
        self.config = config
        self.segments = segments
        self.primary = primary
        self.sweep_interval_s = sweep_interval_s
        self.service: ReasoningService | None = None
        self.registry = GraphRegistry()
        #: (tenant, version, SharedMemory) of swapped-out snapshots;
        #: holding only the handle (never the snapshot) lets the object
        #: graph die as soon as the last in-flight read drops it
        self._retired: list[tuple[str, int, Any]] = []
        self._pending: dict[int, asyncio.Future] = {}
        self._seq = 0
        self._stop = asyncio.Event()
        self._drain_timeout_s = 10.0
        self._send_lock = threading.Lock()

    def _send(self, message: dict[str, Any]) -> None:
        with self._send_lock:
            _try_send(self.conn, message)

    def _bind_tenant(self, tenant: str, segment_name: str) -> int:
        """Attach a segment and bind it as a fresh tenant; returns the
        attached snapshot version."""
        # no local snapshot binding outlives this call: a longer-lived
        # local would pin the version's views (and so its segment) forever
        manager = SnapshotManager()
        manager.publish(shm_codec.attach_snapshot(segment_name))
        self.registry.adopt(tenant, manager)
        return manager.version

    async def run(self) -> None:
        loop = asyncio.get_running_loop()
        versions: dict[str, int] = {}
        # primary first: the first adopted tenant becomes the registry
        # alias, which is what un-prefixed routes resolve to
        ordered = [self.primary] + sorted(set(self.segments) - {self.primary})
        for tenant in ordered:
            name, _version = self.segments[tenant]
            versions[tenant] = self._bind_tenant(tenant, name)
        service = ReasoningService(
            config=self.config, worker_id=self.worker_id, registry=self.registry
        )
        service.mutation_forwarder = self._forward_mutation
        service.admin_forwarder = self._forward_admin
        service.cluster_metrics_provider = self._cluster_metrics
        self.service = service
        await service.start(reuse_port=True)

        queue: asyncio.Queue[dict[str, Any]] = asyncio.Queue()
        reader = threading.Thread(
            target=self._pump_control, args=(loop, queue), daemon=True
        )
        reader.start()
        sweeper = asyncio.create_task(self._sweep_retired())
        self._send(
            {
                "op": "ready",
                "worker": self.worker_id,
                "pid": os.getpid(),
                "versions": versions,
            }
        )
        try:
            while not self._stop.is_set():
                getter = asyncio.create_task(queue.get())
                stopper = asyncio.create_task(self._stop.wait())
                done, pending = await asyncio.wait(
                    (getter, stopper), return_when=asyncio.FIRST_COMPLETED
                )
                for task in pending:
                    task.cancel()
                if getter in done:
                    await self._handle(getter.result())
        finally:
            sweeper.cancel()
            await service.stop()

    def _pump_control(
        self, loop: asyncio.AbstractEventLoop, queue: asyncio.Queue
    ) -> None:
        """Blocking pipe reads on a thread, messages into the loop."""
        while True:
            try:
                message = self.conn.recv()
            except (EOFError, OSError):
                loop.call_soon_threadsafe(self._stop.set)
                return
            loop.call_soon_threadsafe(queue.put_nowait, message)

    async def _handle(self, message: dict[str, Any]) -> None:
        op = message.get("op")
        if op == "publish":
            await self._on_publish(
                message.get("tenant", self.primary),
                message["name"],
                message["version"],
            )
        elif op == "retire_tenant":
            self._on_retire_tenant(message["tenant"])
        elif op == "drain":
            self._drain_timeout_s = message.get("timeout_s", self._drain_timeout_s)
            assert self.service is not None
            await self.service.drain(self._drain_timeout_s)
            self._send({"op": "drained", "worker": self.worker_id})
            self._stop.set()
        elif op == "stop":
            self._stop.set()
        elif op == "metrics?":
            assert self.service is not None
            self._send(
                {
                    "op": "metrics",
                    "id": message.get("id"),
                    "payload": self.service.metrics.to_dict(),
                }
            )
        elif op in ("mutate_result", "metrics_cluster", "admin_result"):
            future = self._pending.pop(message.get("id"), None)
            if future is not None and not future.done():
                future.set_result(message)

    async def _on_publish(self, tenant: str, name: str, version: int) -> None:
        loop = asyncio.get_running_loop()
        started = time.perf_counter()
        try:
            snapshot = await loop.run_in_executor(None, shm_codec.attach_snapshot, name)
        except Exception as exc:  # noqa: BLE001 - stay on the old version
            logger.exception(
                "worker %d failed to attach tenant %s version %d",
                self.worker_id, tenant, version,
            )
            self._send(
                {
                    "op": "attach_failed",
                    "worker": self.worker_id,
                    "tenant": tenant,
                    "version": version,
                    "error": f"{type(exc).__name__}: {exc}",
                }
            )
            return
        attach_s = time.perf_counter() - started
        binding = self.registry.peek(tenant)
        if binding is None:
            # a tenant created after this worker spawned: bind fresh
            manager = SnapshotManager()
            manager.publish(snapshot)
            try:
                self.registry.adopt(tenant, manager)
            except TenantError:  # raced a concurrent bind: retire ours
                self._retired.append((tenant, version, snapshot.shm))
                del snapshot
                return
            swap_pause_s = 0.0
        else:
            old = binding.manager.current
            binding.manager.publish(snapshot)  # the swap: one reference store
            swap_pause_s = binding.manager.last_swap_pause_s
            if isinstance(old, shm_codec.AttachedSnapshot):
                self._retired.append((tenant, old.version, old.shm))
            del old  # our reference; in-flight reads keep theirs
        self._send(
            {
                "op": "attached",
                "worker": self.worker_id,
                "tenant": tenant,
                "version": version,
                "attach_s": attach_s,
                "swap_pause_s": swap_pause_s,
            }
        )

    def _on_retire_tenant(self, tenant: str) -> None:
        try:
            binding = self.registry.drop(tenant)
        except UnknownTenantError:
            return
        if self.service is not None:
            # a same-named tenant created later restarts at version 1
            self.service.cache.evict_tenant(tenant)
        try:
            current = binding.manager.current
        except RuntimeError:
            current = None
        if isinstance(current, shm_codec.AttachedSnapshot):
            self._retired.append((tenant, current.version, current.shm))
        del current, binding
        self._send(
            {"op": "retired_tenant", "worker": self.worker_id, "tenant": tenant}
        )

    async def _sweep_retired(self) -> None:
        """Release retired segments once no in-flight read references them.

        A retired snapshot's numpy views keep exported pointers into the
        mapping, and ``SharedMemory.close`` refuses (``BufferError``) to
        unmap while any exist — so "retry close until it succeeds" *is*
        the refcount.  The local reference is dropped first; once the
        cache keys, batcher groups, and executor reads referencing the
        snapshot are gone, the close lands and the parent learns the
        worker released the version.
        """
        import gc

        while True:
            await asyncio.sleep(self.sweep_interval_s)
            if not self._retired:
                continue
            # graph <-> frame form a cycle, so the retired snapshot needs
            # a collector pass even after the last reader dropped it
            gc.collect()
            survivors: list[tuple[str, int, Any]] = []
            for tenant, version, handle in self._retired:
                try:
                    handle.close()
                except BufferError:  # views still exported: a read is live
                    survivors.append((tenant, version, handle))
                    continue
                self._send(
                    {
                        "op": "released",
                        "worker": self.worker_id,
                        "tenant": tenant,
                        "version": version,
                    }
                )
            self._retired = survivors

    # -- forwarded endpoints -------------------------------------------

    def _next_request(self) -> tuple[int, asyncio.Future]:
        self._seq += 1
        future = asyncio.get_running_loop().create_future()
        self._pending[self._seq] = future
        return self._seq, future

    async def _forward_mutation(
        self, tenant: str, deltas: list[Any], wait: bool
    ) -> tuple[int, Any]:
        request_id, future = self._next_request()
        self._send(
            {
                "op": "mutate",
                "id": request_id,
                "worker": self.worker_id,
                "tenant": tenant,
                "deltas": deltas,
                "wait": wait,
            }
        )
        reply = await future
        return reply.get("status", 500), reply.get("payload")

    async def _forward_admin(self, action: str, tenant: str) -> tuple[int, Any]:
        request_id, future = self._next_request()
        self._send(
            {
                "op": "admin",
                "id": request_id,
                "worker": self.worker_id,
                "action": action,
                "tenant": tenant,
            }
        )
        reply = await future
        return reply.get("status", 500), reply.get("payload")

    async def _cluster_metrics(self) -> Any:
        request_id, future = self._next_request()
        self._send({"op": "metrics_cluster?", "id": request_id, "worker": self.worker_id})
        reply = await future
        return reply.get("payload")
