"""SO_REUSEPORT worker-pool serving over shared-memory snapshots.

One process cannot outrun its GIL, so scale-out runs N copies of the
asyncio server (``repro.service.server``) as separate processes, all
listening on the **same** port via ``SO_REUSEPORT`` — the kernel
load-balances accepted connections across the listening sockets, no
userspace proxy involved.  What makes N processes cheap is the segment
codec (``repro.service.shm``): every worker attaches the same read-only
shared-memory snapshot, so the heavy columnar buffers exist once in
physical memory no matter how many workers serve them.

Topology::

    parent (ServicePool)                     worker i (x N)
    ------------------------                 -----------------------------
    builds snapshot v, seals                 attaches segment (zero-copy),
    segment, supervises        == Pipe ==>   runs ReasoningService with
    workers, serializes        <== Pipe ==   reuse_port=True, forwards
    mutations, merges metrics                POST /mutations to parent

The parent is the **single builder**: it owns the staging graph and the
incremental :class:`SnapshotBuilder` (PR 6), applies mutation batches
one at a time, seals each new version into a fresh segment, and
publishes by *version handoff* — a ``publish`` message naming the
segment.  Workers attach the new segment, swap their
:class:`SnapshotManager` atomically (readers in flight keep the old
snapshot via their reference — no torn reads), acknowledge, and retire
the old attachment.  Retirement is refcount-safe by construction:
``SharedMemory.close`` raises ``BufferError`` while any numpy view into
the mapping is still alive, so each worker just retries the close until
its in-flight readers are done, then reports ``released``; the parent
unlinks a segment only after every worker that attached it has released
it (a crashed worker counts as released — the kernel dropped its maps).

Failure handling: the parent supervises worker processes and restarts a
crashed worker against the current segment (bounded by
``PoolConfig.restart_limit``); ``SIGTERM`` triggers a graceful drain —
workers stop accepting, finish in-flight requests, and exit before the
parent unlinks the segments.
"""

from __future__ import annotations

import asyncio
import logging
import multiprocessing
import multiprocessing.connection
import os
import socket
import threading
import time
from dataclasses import dataclass
from typing import Any, Sequence

from ..graph.company_graph import CompanyGraph
from ..linkage.bayes import BayesianLinkClassifier
from ..telemetry import NULL_TRACER
from . import shm as shm_codec
from .server import Metrics, ReasoningService, ServiceConfig
from .snapshot import Snapshot, SnapshotBuilder, SnapshotConfig, SnapshotManager
from .updates import MutationError, apply_deltas

logger = logging.getLogger(__name__)


@dataclass
class PoolConfig:
    """Knobs of the worker pool itself (the HTTP knobs live in
    :class:`ServiceConfig`)."""

    #: restarts allowed per worker slot before the slot is abandoned
    restart_limit: int = 3
    #: how long the parent waits for every worker to attach a new version
    publish_timeout_s: float = 60.0
    #: how long the parent waits for the initial worker fleet to come up
    start_timeout_s: float = 120.0
    #: graceful-drain budget on stop/SIGTERM
    drain_timeout_s: float = 10.0
    #: retry cadence of the worker-side retired-segment close sweep
    sweep_interval_s: float = 0.2
    #: multiprocessing start method; fork is fastest on Linux, and all
    #: worker arguments are picklable so spawn works where fork doesn't
    start_method: str = "fork"


class PoolError(RuntimeError):
    """The pool could not reach or keep its requested worker fleet."""


# ======================================================================
# parent side
# ======================================================================


class ServicePool:
    """N SO_REUSEPORT serving processes + this process as the builder.

    ``start()`` builds snapshot v1, seals it into a shared segment,
    reserves the port, launches the workers, and returns once every
    worker accepts connections.  ``oracle`` always holds the in-process
    :class:`Snapshot` equal to what the workers serve — the benchmark
    and the race tests assert per-row response identity against it.
    """

    def __init__(
        self,
        graph: CompanyGraph,
        workers: int,
        config: ServiceConfig | None = None,
        snapshot_config: SnapshotConfig | None = None,
        classifiers: Sequence[BayesianLinkClassifier] | None = None,
        tracer=None,
        pool_config: PoolConfig | None = None,
        start_version: int = 0,
        initial_snapshot: Snapshot | None = None,
        persist_hook=None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.requested_workers = workers
        self.config = config if config is not None else ServiceConfig()
        self.pool_config = pool_config if pool_config is not None else PoolConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._builder = SnapshotBuilder(
            snapshot_config, classifiers=classifiers, tracer=self.tracer,
            start_version=start_version,
        )
        #: pre-built snapshot adopted by ``start()`` instead of a cold
        #: build — how ``serve --store --workers N`` boots from a durable
        #: attach.  Not re-persisted (it came from the store).
        self._initial_snapshot = initial_snapshot
        #: callable(snapshot) persisting each freshly built version
        #: (e.g. ``FrameStore.persist``); failures are counted, not fatal
        self.persist_hook = persist_hook
        self.persists = 0
        self.persist_failures = 0
        self.last_persist_error: str | None = None
        self._staging = graph
        self._oracle: Snapshot | None = None
        self._ctx = multiprocessing.get_context(self.pool_config.start_method)
        self._procs: dict[int, multiprocessing.process.BaseProcess] = {}
        self._conns: dict[int, multiprocessing.connection.Connection] = {}
        self._restarts: dict[int, int] = {}
        self.restarts = 0
        #: segment bookkeeping: version -> creator handle / attached workers
        self._segments: dict[int, Any] = {}
        self._segment_names: dict[int, str] = {}
        self._attached: dict[int, set[int]] = {}
        self._current_version = 0
        #: worker -> last version it acknowledged (ready/attached)
        self.worker_versions: dict[int, int] = {}
        #: worker -> (attach_s, swap_pause_s) of its last publish swap
        self.last_swap: dict[int, dict[str, float]] = {}
        self._lock = threading.RLock()
        self._mutate_lock = threading.Lock()
        self._publish_events: dict[int, threading.Event] = {}
        self._metric_replies: dict[int, dict[int, Any]] = {}
        self._metric_events: dict[int, threading.Event] = {}
        self._request_seq = 0
        self._reserve_sock: socket.socket | None = None
        self._supervisor: threading.Thread | None = None
        self._stopping = threading.Event()
        self.port: int | None = None

    # -- lifecycle -----------------------------------------------------

    @property
    def oracle(self) -> Snapshot:
        """The in-process snapshot identical to what workers serve."""
        if self._oracle is None:
            raise PoolError("pool not started")
        return self._oracle

    @property
    def version(self) -> int:
        return self._current_version

    def live_workers(self) -> list[int]:
        with self._lock:
            return sorted(
                w for w, p in self._procs.items() if p.is_alive() and w in self._conns
            )

    def segment_names(self) -> list[str]:
        """Names of segments the pool still holds (leak check hook)."""
        with self._lock:
            return [self._segment_names[v] for v in sorted(self._segments)]

    def start(self) -> "ServicePool":
        if self._initial_snapshot is not None:
            snapshot = self._initial_snapshot
        else:
            snapshot = self._builder.build(self._staging)
            self._persist(snapshot)
        self._adopt_version(snapshot)
        self._reserve_port()
        for worker_id in range(self.requested_workers):
            self._spawn(worker_id)
        self._supervisor = threading.Thread(
            target=self._supervise, name="pool-supervisor", daemon=True
        )
        self._supervisor.start()
        deadline = time.monotonic() + self.pool_config.start_timeout_s
        while True:
            with self._lock:
                ready = [
                    w
                    for w in range(self.requested_workers)
                    if self.worker_versions.get(w) == self._current_version
                ]
            if len(ready) == self.requested_workers:
                return self
            if time.monotonic() >= deadline:
                self.stop(drain=False)
                raise PoolError(
                    f"only {len(ready)}/{self.requested_workers} workers came up "
                    f"within {self.pool_config.start_timeout_s}s"
                )
            time.sleep(0.01)

    def _persist(self, snapshot: Snapshot) -> None:
        if self.persist_hook is None:
            return
        try:
            self.persist_hook(snapshot)
            self.persists += 1
        except Exception as exc:
            self.persist_failures += 1
            self.last_persist_error = repr(exc)
            logger.exception("durable persist of version %s failed", snapshot.version)

    def _adopt_version(self, snapshot: Snapshot) -> None:
        segment = shm_codec.encode_snapshot(snapshot)
        with self._lock:
            self._segments[snapshot.version] = segment
            self._segment_names[snapshot.version] = segment.name
            self._attached[snapshot.version] = set()
            previous = self._current_version
            self._current_version = snapshot.version
            self._oracle = snapshot
        if previous:
            self._maybe_unlink(previous)

    def _reserve_port(self) -> None:
        """Pin the port with a bound (never listening) SO_REUSEPORT socket.

        With ``port=0`` this is what picks the ephemeral port all workers
        then share; because the socket never listens, the kernel balances
        incoming connections over the workers only.
        """
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((self.config.host, self.config.port))
        self._reserve_sock = sock
        self.port = sock.getsockname()[1]

    def _spawn(self, worker_id: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        config = ServiceConfig(**{**self.config.__dict__, "port": self.port})
        proc = self._ctx.Process(
            target=_worker_main,
            args=(
                worker_id,
                child_conn,
                config,
                self._segment_names[self._current_version],
                self._current_version,
                self.pool_config.sweep_interval_s,
            ),
            name=f"repro-serve-{worker_id}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        with self._lock:
            self._procs[worker_id] = proc
            self._conns[worker_id] = parent_conn

    def stop(self, drain: bool = True) -> None:
        """Shut the pool down; with ``drain`` workers finish in-flight
        requests (bounded by ``drain_timeout_s``) before exiting."""
        self._stopping.set()
        with self._lock:
            conns = dict(self._conns)
        if drain:
            for conn in conns.values():
                _try_send(conn, {"op": "drain", "timeout_s": self.pool_config.drain_timeout_s})
            deadline = time.monotonic() + self.pool_config.drain_timeout_s + 2.0
            for proc in list(self._procs.values()):
                proc.join(timeout=max(0.0, deadline - time.monotonic()))
        for conn in conns.values():
            _try_send(conn, {"op": "stop"})
        for proc in list(self._procs.values()):
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
        with self._lock:
            for conn in self._conns.values():
                try:
                    conn.close()
                except OSError:
                    pass
            self._conns.clear()
            self._procs.clear()
            versions = list(self._segments)
        for version in versions:
            self._unlink(version)
        if self._reserve_sock is not None:
            self._reserve_sock.close()
            self._reserve_sock = None
        if self._supervisor is not None:
            self._supervisor.join(timeout=2.0)
            self._supervisor = None

    def __enter__(self) -> "ServicePool":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- mutations: the parent is the single builder -------------------

    def mutate(self, deltas: Sequence[dict[str, Any]], wait: bool = True) -> dict[str, Any]:
        """Apply one mutation batch, build, seal, publish to all workers.

        Mirrors :class:`GraphUpdater` semantics (staging copy, whole-batch
        validation, incremental build) but runs synchronously in the
        parent — the pool serializes batches, workers only forward.
        """
        if not deltas:
            raise MutationError("empty delta batch")
        with self._mutate_lock:
            base = self._staging
            candidate = base.copy()
            batch = apply_deltas(candidate, deltas)  # MutationError -> 400 upstream
            batch.base = base
            batch.base_generation = base.generation
            new_edges = None if batch.removed_any else batch.new_edges
            started = time.perf_counter()
            snapshot = self._builder.build(candidate, new_edges=new_edges, delta=batch)
            self._staging = candidate
            self._adopt_version(snapshot)
            self._persist(snapshot)
            published = self._await_fleet(snapshot.version)
            return {
                "status": "published",
                "applied": len(deltas),
                "version": snapshot.version,
                "build_s": round(time.perf_counter() - started, 4),
                "warm_build": snapshot.warm,
                "workers_attached": published,
            }

    def _await_fleet(self, version: int) -> list[int]:
        """Broadcast ``publish`` and wait until every live worker swapped."""
        event = threading.Event()
        with self._lock:
            self._publish_events[version] = event
            conns = dict(self._conns)
            name = self._segment_names[version]
        for conn in conns.values():
            _try_send(conn, {"op": "publish", "name": name, "version": version})
        deadline = time.monotonic() + self.pool_config.publish_timeout_s
        while not self._fleet_attached(version):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                with self._lock:
                    attached = sorted(self._attached.get(version, ()))
                raise PoolError(
                    f"version {version} reached only workers {attached} within "
                    f"{self.pool_config.publish_timeout_s}s"
                )
            event.wait(timeout=min(remaining, 0.05))
            event.clear()
        with self._lock:
            self._publish_events.pop(version, None)
            return sorted(self._attached.get(version, ()))

    def _fleet_attached(self, version: int) -> bool:
        with self._lock:
            live = {
                w for w, p in self._procs.items() if p.is_alive() and w in self._conns
            }
            return live <= self._attached.get(version, set()) and bool(live)

    # -- metrics aggregation -------------------------------------------

    def cluster_metrics(self, timeout_s: float = 5.0) -> dict[str, Any]:
        """Merged per-worker counters + supervisor state (the payload of
        ``GET /metrics?scope=cluster`` on any worker)."""
        with self._lock:
            self._request_seq += 1
            request_id = self._request_seq
            self._metric_replies[request_id] = {}
            event = self._metric_events[request_id] = threading.Event()
            conns = dict(self._conns)
        for conn in conns.values():
            _try_send(conn, {"op": "metrics?", "id": request_id})
        deadline = time.monotonic() + timeout_s
        while True:
            with self._lock:
                replies = self._metric_replies[request_id]
                live = set(self.live_workers())
                done = live <= set(replies)
            if done or time.monotonic() >= deadline:
                break
            event.wait(timeout=0.05)
            event.clear()
        with self._lock:
            replies = self._metric_replies.pop(request_id)
            self._metric_events.pop(request_id, None)
            worker_versions = dict(self.worker_versions)
            last_swap = {w: dict(s) for w, s in self.last_swap.items()}
        ordered = [replies[w] for w in sorted(replies)]
        return {
            "scope": "cluster",
            "workers": sorted(replies),
            "snapshot_version": self._current_version,
            "worker_versions": worker_versions,
            "restarts": self.restarts,
            "last_swap": last_swap,
            "segments": self.segment_names(),
            "merged": Metrics.merge([p for p in ordered if isinstance(p, dict)]),
            "per_worker": {w: replies[w] for w in sorted(replies)},
        }

    # -- supervision ---------------------------------------------------

    def _supervise(self) -> None:
        while not self._stopping.is_set():
            with self._lock:
                conns = dict(self._conns)
                sentinels = {p.sentinel: w for w, p in self._procs.items()}
            waitable = list(conns.values()) + list(sentinels)
            if not waitable:
                return
            try:
                ready = multiprocessing.connection.wait(waitable, timeout=0.25)
            except OSError:
                continue
            for item in ready:
                if isinstance(item, multiprocessing.connection.Connection):
                    worker_id = next(
                        (w for w, c in conns.items() if c is item), None
                    )
                    if worker_id is None:
                        continue
                    try:
                        message = item.recv()
                    except (EOFError, OSError):
                        self._on_worker_gone(worker_id)
                        continue
                    self._on_message(worker_id, message)
                else:  # a process sentinel became ready: the worker died
                    self._on_worker_gone(sentinels[item])

    def _on_message(self, worker_id: int, message: dict[str, Any]) -> None:
        op = message.get("op")
        if op in ("ready", "attached"):
            version = message["version"]
            with self._lock:
                self._attached.setdefault(version, set()).add(worker_id)
                self.worker_versions[worker_id] = version
                if op == "attached":
                    self.last_swap[worker_id] = {
                        "attach_s": message.get("attach_s", 0.0),
                        "swap_pause_s": message.get("swap_pause_s", 0.0),
                    }
                event = self._publish_events.get(version)
            if event is not None:
                event.set()
        elif op == "released":
            version = message["version"]
            with self._lock:
                self._attached.get(version, set()).discard(worker_id)
            self._maybe_unlink(version)
        elif op == "metrics":
            request_id = message.get("id")
            with self._lock:
                replies = self._metric_replies.get(request_id)
                if replies is not None:
                    replies[worker_id] = message.get("payload")
                event = self._metric_events.get(request_id)
            if event is not None:
                event.set()
        elif op == "mutate":
            threading.Thread(
                target=self._handle_forwarded_mutation,
                args=(worker_id, message),
                daemon=True,
            ).start()
        elif op == "metrics_cluster?":
            threading.Thread(
                target=self._handle_cluster_metrics,
                args=(worker_id, message),
                daemon=True,
            ).start()

    def _handle_forwarded_mutation(self, worker_id: int, message: dict[str, Any]) -> None:
        request_id = message.get("id")
        try:
            result = self.mutate(message.get("deltas") or [], wait=True)
            reply = {"op": "mutate_result", "id": request_id, "status": 200, "payload": result}
        except MutationError as exc:
            reply = {
                "op": "mutate_result",
                "id": request_id,
                "status": 400,
                "payload": {"error": str(exc)},
            }
        except Exception as exc:  # noqa: BLE001 - worker must get an answer
            logger.exception("forwarded mutation failed")
            reply = {
                "op": "mutate_result",
                "id": request_id,
                "status": 500,
                "payload": {"error": f"{type(exc).__name__}: {exc}"},
            }
        with self._lock:
            conn = self._conns.get(worker_id)
        if conn is not None:
            _try_send(conn, reply)

    def _handle_cluster_metrics(self, worker_id: int, message: dict[str, Any]) -> None:
        payload = self.cluster_metrics()
        with self._lock:
            conn = self._conns.get(worker_id)
        if conn is not None:
            _try_send(
                conn,
                {"op": "metrics_cluster", "id": message.get("id"), "payload": payload},
            )

    def _on_worker_gone(self, worker_id: int) -> None:
        with self._lock:
            if worker_id not in self._procs and worker_id not in self._conns:
                return  # sentinel + pipe EOF both fired; already handled
            proc = self._procs.pop(worker_id, None)
            conn = self._conns.pop(worker_id, None)
            self.worker_versions.pop(worker_id, None)
            # the kernel unmapped the dead worker's segments: that IS a release
            touched = [v for v, who in self._attached.items() if worker_id in who]
            for version in touched:
                self._attached[version].discard(worker_id)
            restarts = self._restarts.get(worker_id, 0)
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
        for version in touched:
            self._maybe_unlink(version)
        if proc is not None:
            proc.join(timeout=0.5)
        if self._stopping.is_set():
            return
        if restarts >= self.pool_config.restart_limit:
            logger.error(
                "worker %d exceeded restart limit (%d); slot abandoned",
                worker_id,
                self.pool_config.restart_limit,
            )
            return
        logger.warning("worker %d died; restarting", worker_id)
        with self._lock:
            self._restarts[worker_id] = restarts + 1
            self.restarts += 1
        self._spawn(worker_id)

    # -- segment retirement --------------------------------------------

    def _maybe_unlink(self, version: int) -> None:
        with self._lock:
            retired = version != self._current_version
            unreferenced = not self._attached.get(version)
        if retired and unreferenced:
            self._unlink(version)

    def _unlink(self, version: int) -> None:
        with self._lock:
            segment = self._segments.pop(version, None)
            self._segment_names.pop(version, None)
            self._attached.pop(version, None)
        if segment is None:
            return
        try:
            segment.unlink()
        except FileNotFoundError:
            pass
        try:
            segment.close()
        except BufferError:  # parent still holds views (oracle frame): harmless,
            pass  # the kernel frees the pages once the mapping dies with us


def _try_send(conn: multiprocessing.connection.Connection, message: dict[str, Any]) -> bool:
    try:
        conn.send(message)
        return True
    except (BrokenPipeError, OSError):
        return False


# ======================================================================
# worker side
# ======================================================================


def _worker_main(
    worker_id: int,
    conn: multiprocessing.connection.Connection,
    config: ServiceConfig,
    segment_name: str,
    version: int,
    sweep_interval_s: float,
) -> None:
    """Entry point of one serving process (must stay picklable for spawn)."""
    import signal

    signal.signal(signal.SIGINT, signal.SIG_IGN)  # parent coordinates shutdown
    try:
        asyncio.run(
            _Worker(worker_id, conn, config, segment_name, version, sweep_interval_s).run()
        )
    except Exception:  # pragma: no cover - crash path exercised via kill tests
        logger.exception("worker %d crashed", worker_id)
        raise
    finally:
        try:
            conn.close()
        except OSError:
            pass


class _Worker:
    """Asyncio half of a serving process: HTTP + the control channel."""

    def __init__(
        self,
        worker_id: int,
        conn: multiprocessing.connection.Connection,
        config: ServiceConfig,
        segment_name: str,
        version: int,
        sweep_interval_s: float,
    ):
        self.worker_id = worker_id
        self.conn = conn
        self.config = config
        self.segment_name = segment_name
        self.version = version
        self.sweep_interval_s = sweep_interval_s
        self.service: ReasoningService | None = None
        self.manager = SnapshotManager()
        #: (version, SharedMemory) of swapped-out snapshots; holding only
        #: the handle (never the snapshot) lets the object graph die as
        #: soon as the last in-flight read drops it
        self._retired: list[tuple[int, Any]] = []
        self._pending: dict[int, asyncio.Future] = {}
        self._seq = 0
        self._stop = asyncio.Event()
        self._drain_timeout_s = 10.0
        self._send_lock = threading.Lock()

    def _send(self, message: dict[str, Any]) -> None:
        with self._send_lock:
            _try_send(self.conn, message)

    async def run(self) -> None:
        loop = asyncio.get_running_loop()
        # no local binding: run() lives as long as the worker, and a local
        # here would pin version 1's views (and so its segment) forever
        self.manager.publish(shm_codec.attach_snapshot(self.segment_name))
        service = ReasoningService(
            self.manager, config=self.config, worker_id=self.worker_id
        )
        service.mutation_forwarder = self._forward_mutation
        service.cluster_metrics_provider = self._cluster_metrics
        self.service = service
        await service.start(reuse_port=True)

        queue: asyncio.Queue[dict[str, Any]] = asyncio.Queue()
        reader = threading.Thread(
            target=self._pump_control, args=(loop, queue), daemon=True
        )
        reader.start()
        sweeper = asyncio.create_task(self._sweep_retired())
        self._send(
            {"op": "ready", "worker": self.worker_id, "pid": os.getpid(), "version": self.version}
        )
        try:
            while not self._stop.is_set():
                getter = asyncio.create_task(queue.get())
                stopper = asyncio.create_task(self._stop.wait())
                done, pending = await asyncio.wait(
                    (getter, stopper), return_when=asyncio.FIRST_COMPLETED
                )
                for task in pending:
                    task.cancel()
                if getter in done:
                    await self._handle(getter.result())
        finally:
            sweeper.cancel()
            await service.stop()

    def _pump_control(
        self, loop: asyncio.AbstractEventLoop, queue: asyncio.Queue
    ) -> None:
        """Blocking pipe reads on a thread, messages into the loop."""
        while True:
            try:
                message = self.conn.recv()
            except (EOFError, OSError):
                loop.call_soon_threadsafe(self._stop.set)
                return
            loop.call_soon_threadsafe(queue.put_nowait, message)

    async def _handle(self, message: dict[str, Any]) -> None:
        op = message.get("op")
        if op == "publish":
            await self._on_publish(message["name"], message["version"])
        elif op == "drain":
            self._drain_timeout_s = message.get("timeout_s", self._drain_timeout_s)
            assert self.service is not None
            await self.service.drain(self._drain_timeout_s)
            self._send({"op": "drained", "worker": self.worker_id})
            self._stop.set()
        elif op == "stop":
            self._stop.set()
        elif op == "metrics?":
            assert self.service is not None
            self._send(
                {
                    "op": "metrics",
                    "id": message.get("id"),
                    "payload": self.service.metrics.to_dict(),
                }
            )
        elif op in ("mutate_result", "metrics_cluster"):
            future = self._pending.pop(message.get("id"), None)
            if future is not None and not future.done():
                future.set_result(message)

    async def _on_publish(self, name: str, version: int) -> None:
        loop = asyncio.get_running_loop()
        started = time.perf_counter()
        try:
            snapshot = await loop.run_in_executor(None, shm_codec.attach_snapshot, name)
        except Exception as exc:  # noqa: BLE001 - stay on the old version
            logger.exception("worker %d failed to attach version %d", self.worker_id, version)
            self._send(
                {
                    "op": "attach_failed",
                    "worker": self.worker_id,
                    "version": version,
                    "error": f"{type(exc).__name__}: {exc}",
                }
            )
            return
        attach_s = time.perf_counter() - started
        old = self.manager.current
        self.manager.publish(snapshot)  # the swap: one reference store
        swap_pause_s = self.manager.last_swap_pause_s
        if isinstance(old, shm_codec.AttachedSnapshot):
            self._retired.append((old.version, old.shm))
        del old  # our reference; in-flight reads keep theirs
        self._send(
            {
                "op": "attached",
                "worker": self.worker_id,
                "version": version,
                "attach_s": attach_s,
                "swap_pause_s": swap_pause_s,
            }
        )

    async def _sweep_retired(self) -> None:
        """Release retired segments once no in-flight read references them.

        A retired snapshot's numpy views keep exported pointers into the
        mapping, and ``SharedMemory.close`` refuses (``BufferError``) to
        unmap while any exist — so "retry close until it succeeds" *is*
        the refcount.  The local reference is dropped first; once the
        cache keys, batcher groups, and executor reads referencing the
        snapshot are gone, the close lands and the parent learns the
        worker released the version.
        """
        import gc

        while True:
            await asyncio.sleep(self.sweep_interval_s)
            if not self._retired:
                continue
            # graph <-> frame form a cycle, so the retired snapshot needs
            # a collector pass even after the last reader dropped it
            gc.collect()
            survivors: list[tuple[int, Any]] = []
            for version, handle in self._retired:
                try:
                    handle.close()
                except BufferError:  # views still exported: a read is live
                    survivors.append((version, handle))
                    continue
                self._send(
                    {"op": "released", "worker": self.worker_id, "version": version}
                )
            self._retired = survivors

    # -- forwarded endpoints -------------------------------------------

    def _next_request(self) -> tuple[int, asyncio.Future]:
        self._seq += 1
        future = asyncio.get_running_loop().create_future()
        self._pending[self._seq] = future
        return self._seq, future

    async def _forward_mutation(
        self, deltas: list[Any], wait: bool
    ) -> tuple[int, Any]:
        request_id, future = self._next_request()
        self._send(
            {
                "op": "mutate",
                "id": request_id,
                "worker": self.worker_id,
                "deltas": deltas,
                "wait": wait,
            }
        )
        reply = await future
        return reply.get("status", 500), reply.get("payload")

    async def _cluster_metrics(self) -> Any:
        request_id, future = self._next_request()
        self._send({"op": "metrics_cluster?", "id": request_id, "worker": self.worker_id})
        reply = await future
        return reply.get("payload")
