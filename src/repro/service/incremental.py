"""Delta-driven maintenance of snapshot relations.

The cold snapshot build recomputes the control closure, the close-link
pairs and the UBO index from scratch — O(graph) work per mutation batch,
~13s at the service benchmark's scale.  This module makes the rebuild
cost proportional to the *delta* instead, DRed-style: a mutation batch
dirties a small set of nodes, only the sources whose derivations could
depend on those nodes are deleted and re-derived, and everything else is
carried over from the previous build's row state.

The key observation is that all three relations are unions of
independent *per-source rows*:

* control closure = union over sources of ``controlled_by(source)``;
* close links derive from the per-source accumulated-ownership rows
  ``Phi(source, ·)``;
* the UBO index assembles from per-person ``(integrated, controlled)``
  rows.

Each row only reads the part of the graph reachable from its source via
shareholding edges.  So a changed edge ``u -> v`` (or changed node)
can only affect rows whose source *reaches* the change — the ancestors
of the dirty nodes in the shareholding graph.  Patching recomputes
exactly those rows with the same functions the cold build uses, which
makes the patched control and close-link relations bit-identical to a
cold build by construction.  (UBO rows go through the frame's LU solve;
carried-over rows can differ from a freshly factorised solve in the
last ulps, which the service's 6-decimal payload rounding absorbs.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..graph.company_graph import PERSON, SHAREHOLDING, CompanyGraph
from ..graph.property_graph import Edge, NodeId
from ..ownership.close_links import (
    accumulated_ownership_dag,
    accumulated_ownership_from,
    is_acyclic,
)
from ..ownership.control import controlled_by
from ..ownership.ubo import beneficial_owner_rows


@dataclass
class DeltaBatch:
    """Everything one accepted mutation batch changed, for the patchers.

    Produced by :func:`~repro.service.updates.apply_deltas` and threaded
    through :meth:`~repro.service.snapshot.SnapshotBuilder.build`.
    Unpacks as the historical ``(new_edges, removed_any)`` pair for
    callers that only feed the warm embedder.
    """

    #: shareholding edges added (in application order)
    new_edges: list[Edge] = field(default_factory=list)
    #: whether any edge or node was removed
    removed_any: bool = False
    #: ``(node id, label)`` of nodes added / removed by the batch
    added_nodes: list[tuple[NodeId, str]] = field(default_factory=list)
    removed_nodes: list[tuple[NodeId, str]] = field(default_factory=list)
    #: edge objects removed (any label, incident edges of removed nodes
    #: included)
    removed_edges: list[Edge] = field(default_factory=list)
    #: ``(node id, node label, property name)`` per ``set_property`` op
    property_changes: list[tuple[NodeId, str, str]] = field(default_factory=list)
    #: the staging graph the batch was applied *on top of* — the patchers
    #: only run when this is the exact graph object of the previous
    #: build, still at the generation it was built at (the chain check)
    base: CompanyGraph | None = None
    base_generation: int = -1

    def __iter__(self):
        yield self.new_edges
        yield self.removed_any

    def dirty_nodes(self) -> set[NodeId]:
        """Nodes whose incident shareholding structure changed."""
        dirty: set[NodeId] = set()
        for edge in self.new_edges:
            dirty.add(edge.source)
            dirty.add(edge.target)
        for edge in self.removed_edges:
            if edge.label == SHAREHOLDING:
                dirty.add(edge.source)
                dirty.add(edge.target)
        for node, _label in self.added_nodes:
            dirty.add(node)
        for node, _label in self.removed_nodes:
            dirty.add(node)
        return dirty

    def touches_family_inputs(self) -> bool:
        """Whether the batch could change the detected family links.

        Family links depend only on the person nodes (their properties
        feed the blocking keys and the Bayesian classifiers), the FAMILY
        membership edges, and the first-level cluster assignment (which
        the builder compares separately).  Shareholding-only deltas and
        company property edits leave them untouched.
        """
        if any(label == PERSON for _node, label in self.added_nodes):
            return True
        if any(label == PERSON for _node, label in self.removed_nodes):
            return True
        if any(label == PERSON for _node, label, _name in self.property_changes):
            return True
        return any(edge.label != SHAREHOLDING for edge in self.removed_edges)


def shareholding_ancestors(
    graph: CompanyGraph, seeds: Iterable[NodeId]
) -> set[NodeId]:
    """``seeds`` plus every node that reaches a seed via shareholdings.

    Reverse BFS over SHAREHOLDING in-edges: these are exactly the
    sources whose control / accumulated-ownership / integrated-ownership
    rows can see a change at the seeds.
    """
    reached = {seed for seed in seeds if graph.has_node(seed)}
    frontier = list(reached)
    while frontier:
        node = frontier.pop()
        for edge in graph.in_edges(node, SHAREHOLDING):
            if edge.source not in reached:
                reached.add(edge.source)
                frontier.append(edge.source)
    return reached


def affected_sources(
    delta: DeltaBatch, old_graph: CompanyGraph, new_graph: CompanyGraph
) -> set[NodeId]:
    """Sources whose per-source rows a delta batch may change.

    Ancestors are taken in *both* the old and the new graph: a removed
    edge breaks reachability that only the old graph shows, an added
    edge creates reachability that only the new graph shows.  Everything
    outside this set provably derives the same row on both graphs.
    """
    dirty = delta.dirty_nodes()
    return shareholding_ancestors(old_graph, dirty) | shareholding_ancestors(
        new_graph, dirty
    )


# ----------------------------------------------------------------------
# control closure rows
# ----------------------------------------------------------------------


def control_rows(
    graph: CompanyGraph, threshold: float
) -> dict[NodeId, set[NodeId]]:
    """Per-source control rows; their union is ``control_closure``."""
    return {
        source: controlled_by(graph, source, threshold)
        for source in graph.node_ids()
    }


def patch_control_rows(
    rows: dict[NodeId, set[NodeId]],
    old_graph: CompanyGraph,
    new_graph: CompanyGraph,
    delta: DeltaBatch,
    threshold: float,
    affected: set[NodeId] | None = None,
) -> dict[NodeId, set[NodeId]]:
    """Recompute only the rows whose source reaches the delta."""
    if affected is None:
        affected = affected_sources(delta, old_graph, new_graph)
    patched = dict(rows)
    for node, _label in delta.removed_nodes:
        patched.pop(node, None)
    for source in affected:
        if new_graph.has_node(source):
            patched[source] = controlled_by(new_graph, source, threshold)
        else:
            patched.pop(source, None)
    return patched


def control_pairs_from_rows(
    rows: dict[NodeId, set[NodeId]]
) -> set[tuple[NodeId, NodeId]]:
    return {(source, target) for source, row in rows.items() for target in row}


# ----------------------------------------------------------------------
# accumulated-ownership (Phi) rows for close links
# ----------------------------------------------------------------------


def phi_rows(
    graph: CompanyGraph, max_depth: int | None
) -> tuple[dict[NodeId, dict[NodeId, float]], bool]:
    """Per-source Phi rows plus the strategy flag (DAG DP vs DFS).

    Mirrors :func:`~repro.ownership.close_links.all_accumulated_ownership`
    exactly — same strategy choice, same per-source functions — so the
    rows are bit-identical to what the cold build computes.
    """
    use_dag = max_depth is None and is_acyclic(graph)
    rows: dict[NodeId, dict[NodeId, float]] = {}
    for source in graph.node_ids():
        if use_dag:
            rows[source] = accumulated_ownership_dag(graph, source)
        else:
            rows[source] = accumulated_ownership_from(graph, source, max_depth=max_depth)
    return rows, use_dag


def patch_phi_rows(
    rows: dict[NodeId, dict[NodeId, float]],
    prev_use_dag: bool,
    old_graph: CompanyGraph,
    new_graph: CompanyGraph,
    delta: DeltaBatch,
    max_depth: int | None,
    affected: set[NodeId] | None = None,
) -> tuple[dict[NodeId, dict[NodeId, float]], bool]:
    """Patch Phi rows for a delta; falls back to a full recompute when
    the evaluation strategy flips (a delta opening or closing the last
    cycle switches between the DAG DP and the bounded DFS, which changes
    every row's float accumulation order)."""
    use_dag = max_depth is None and is_acyclic(new_graph)
    if use_dag != prev_use_dag:
        return phi_rows(new_graph, max_depth)
    if affected is None:
        affected = affected_sources(delta, old_graph, new_graph)
    patched = dict(rows)
    for node, _label in delta.removed_nodes:
        patched.pop(node, None)
    for source in affected:
        if not new_graph.has_node(source):
            patched.pop(source, None)
        elif use_dag:
            patched[source] = accumulated_ownership_dag(new_graph, source)
        else:
            patched[source] = accumulated_ownership_from(
                new_graph, source, max_depth=max_depth
            )
    return patched, use_dag


# ----------------------------------------------------------------------
# UBO rows
# ----------------------------------------------------------------------


def patch_ubo_rows(
    integrated: dict[NodeId, dict[NodeId, float]],
    controlled: dict[NodeId, set[NodeId]],
    old_graph: CompanyGraph,
    new_graph: CompanyGraph,
    delta: DeltaBatch,
    control_threshold: float,
    affected: set[NodeId] | None = None,
) -> tuple[dict[NodeId, dict[NodeId, float]], dict[NodeId, set[NodeId]]]:
    """Recompute the per-person UBO rows the delta could have changed."""
    if affected is None:
        affected = affected_sources(delta, old_graph, new_graph)
    patched_integrated = dict(integrated)
    patched_controlled = dict(controlled)
    for node, _label in delta.removed_nodes:
        patched_integrated.pop(node, None)
        patched_controlled.pop(node, None)
    persons = [
        person
        for person in affected
        if new_graph.has_node(person) and new_graph.node(person).label == PERSON
    ]
    fresh_integrated, fresh_controlled = beneficial_owner_rows(
        new_graph, control_threshold, persons=persons
    )
    patched_integrated.update(fresh_integrated)
    patched_controlled.update(fresh_controlled)
    for person in affected:
        if not new_graph.has_node(person):
            patched_integrated.pop(person, None)
            patched_controlled.pop(person, None)
    return patched_integrated, patched_controlled
