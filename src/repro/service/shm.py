"""Shared-memory snapshot segments: one codec, N zero-copy readers.

The multi-process serving model (``repro.service.workers``) needs every
reader process to see the *same* snapshot without paying a per-process
copy of the columnar buffers.  This module is the codec: it lays a
complete :class:`~repro.service.snapshot.Snapshot` into **one** named
``multiprocessing.shared_memory`` segment —

* a fixed 64-byte **header** (magic, format version, snapshot version,
  TOC location, total size) so stale or foreign segments are rejected
  before anything is decoded;
* a JSON **TOC** describing every buffer (name, dtype, length, offset);
* the frame's numeric **buffers** (interned edge columns, CSR/CSC
  adjacency with edge positions, walker lockstep CSR, shareholding COO,
  ownership ``W`` in CSC form), 64-byte aligned, exactly as exported by
  :meth:`GraphFrame.buffers <repro.graph.columnar.GraphFrame.buffers>`;
* the snapshot's precomputed **row state** as code arrays — control
  pairs, close-link pairs, family links (with an interned class table),
  and the flattened UBO index;
* one pickled **object blob** for the irreducibly Python-object side:
  the base and augmented graph states (node/edge objects with property
  dicts) and the snapshot config/metadata.

Attaching (:func:`attach_snapshot`) is the inverse: numeric buffers come
back as **zero-copy, read-only ``np.ndarray`` views** over the mapped
segment — N workers share one physical copy of the heavy arrays — while
the object side is rehydrated per process (Python objects cannot be
shared across interpreters without serialisation).  The attached
:class:`GraphFrame` is installed as the graph's cached frame, so
custom-threshold endpoint recomputations and ownership sweeps in the
worker resolve to the shared buffers instead of rebuilding private ones.

Lifecycle discipline: the *creator* (the builder process) owns
``unlink``; attachers only ever ``close``.  ``SharedMemory.close`` on an
attachment whose arrays are still referenced raises ``BufferError`` —
the worker pool exploits exactly that to make segment retirement
refcount-safe (see ``repro.service.workers``).  Attachers are
unregistered from the ``multiprocessing`` resource tracker, which would
otherwise unlink still-shared segments when any single reader exits.
"""

from __future__ import annotations

import json
import pickle
import struct
import time
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any

import numpy as np

from ..graph.columnar import _CACHE_ATTR, EXPORT_DTYPES, GraphFrame
from ..graph.property_graph import PropertyGraph
from ..graph.store import GraphStore
from ..storage.layout import ROW_DTYPES, decode_rows, encode_rows
from .snapshot import DEFAULT_TENANT, Snapshot

#: Segment magic — "Repro KG Snapshot".
MAGIC = b"RKGS"
#: Bump on any incompatible layout change; attach rejects mismatches.
FORMAT_VERSION = 1
#: Every buffer starts on a 64-byte boundary (cache-line alignment).
ALIGNMENT = 64

_HEADER = struct.Struct("<4sHHQQQQ")  # magic, format, flags, version, toc_off, toc_len, total
HEADER_SIZE = ALIGNMENT

#: Row-state dtypes — shared with the durable store (repro.storage.layout)
#: so the shm segment and the on-disk columns cannot drift.
_ROW_DTYPES = ROW_DTYPES


class SegmentError(RuntimeError):
    """A segment that is missing, foreign, truncated, or version-skewed."""


def _align(offset: int) -> int:
    return (offset + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


# Resource-tracker note: CPython registers a segment with the (shared,
# per-process-tree) resource tracker on EVERY open — attach included —
# and the tracker's cache is a name-keyed set.  An attacher explicitly
# unregistering would therefore clobber the creator's registration and
# the creator's eventual ``unlink`` would double-unregister.  So nobody
# here unregisters manually: attach registrations dedup against the
# creator's, and the one ``unlink`` (which unregisters internally)
# balances them all.  If the whole tree crashes before unlinking, the
# tracker reaps the segment at shutdown — exactly the safety net we want.


def _graph_state(graph: PropertyGraph) -> tuple[type, dict[str, Any]]:
    """``(class, __dict__)`` of ``graph`` minus the cached-frame attribute
    (frames hold an unpicklable SuperLU factorisation)."""
    state = {k: v for k, v in graph.__dict__.items() if k != _CACHE_ATTR}
    return type(graph), state


def _restore_graph(payload: tuple[type, dict[str, Any]]) -> PropertyGraph:
    cls, state = payload
    graph = object.__new__(cls)
    graph.__dict__.update(state)
    return graph


class AttachedSnapshot(Snapshot):
    """A snapshot whose frame buffers are views over a shared segment.

    Behaves exactly like a built :class:`Snapshot` (same payloads, same
    types — the per-row identity tests assert it); additionally carries
    the attachment handle so the owner can ``close()`` the mapping once
    the snapshot is retired.  ``close`` raises ``BufferError`` while any
    array view is still alive, which is the refcount-safety contract the
    worker pool relies on.
    """

    segment_name: str
    shm: shared_memory.SharedMemory
    #: the tenant the segment was encoded for (``default`` pre-tenancy)
    tenant: str

    def close(self) -> None:
        """Unmap the segment (creator processes must use ``unlink``)."""
        self.shm.close()


@dataclass
class SegmentInfo:
    """Decoded header + TOC of a segment (no object rehydration)."""

    name: str
    format_version: int
    snapshot_version: int
    total_size: int
    buffers: dict[str, dict[str, Any]]
    meta: dict[str, Any]


def encode_snapshot(
    snapshot: Snapshot, name: str | None = None, tenant: str = DEFAULT_TENANT
) -> shared_memory.SharedMemory:
    """Lay ``snapshot`` into one named shared-memory segment.

    Returns the created :class:`SharedMemory`; the caller (the builder
    process) owns it and is responsible for ``unlink`` once every reader
    has released its attachment.  ``tenant`` is recorded in the TOC so a
    worker attaching a handed-off segment can bind it to the right
    registry entry without trusting the segment *name*.
    """
    frame = snapshot.frame
    if not frame.is_current(snapshot.graph):  # out-of-band mutation: re-pin
        frame = GraphFrame.of(snapshot.graph)
    buffers = dict(frame.buffers())
    row_buffers, classes = encode_rows(snapshot, frame)
    buffers.update(row_buffers)

    blob = pickle.dumps(
        {
            "graph": _graph_state(snapshot.graph),
            "augmented": _graph_state(snapshot.augmented),
            "config": snapshot.config,
            "version": snapshot.version,
            "built_s": snapshot.built_s,
            "created_at": snapshot.created_at,
            "warm": snapshot.warm,
            "incremental": snapshot.incremental,
            "family_classes": classes,
            "weight_property": frame.weight_property,
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )

    # -- layout: header | toc | aligned buffers | object blob ----------
    toc_buffers: dict[str, dict[str, Any]] = {}
    # TOC length depends only on entry metadata, so lay buffers out
    # first against a placeholder origin, then shift by the TOC size.
    entries = []
    cursor = 0
    for buf_name, array in buffers.items():
        cursor = _align(cursor)
        entries.append((buf_name, array, cursor))
        cursor += array.nbytes
    cursor = _align(cursor)
    blob_rel, cursor = cursor, cursor + len(blob)

    def toc_bytes(origin: int) -> bytes:
        for buf_name, array, rel in entries:
            toc_buffers[buf_name] = {
                "dtype": array.dtype.str,
                "length": int(array.shape[0]),
                "offset": origin + rel,
                "nbytes": int(array.nbytes),
            }
        payload = {
            "buffers": toc_buffers,
            "objects": {"offset": origin + blob_rel, "nbytes": len(blob)},
            "meta": {
                "snapshot_version": snapshot.version,
                "tenant": tenant,
                "nodes": frame.node_count,
                "edges": frame.edge_count,
                "created_at": time.time(),
            },
        }
        return json.dumps(payload, separators=(",", ":")).encode("utf-8")

    # one sizing pass (offsets widen the JSON by at most a few bytes per
    # entry, so size with the final origin candidate until stable)
    origin = HEADER_SIZE
    for _ in range(8):
        encoded = toc_bytes(origin)
        next_origin = _align(HEADER_SIZE + len(encoded))
        if next_origin == origin:
            break
        origin = next_origin
    toc = toc_bytes(origin)
    total = origin + cursor

    shm = shared_memory.SharedMemory(create=True, size=total, name=name)
    try:
        header = _HEADER.pack(
            MAGIC, FORMAT_VERSION, 0, snapshot.version, HEADER_SIZE, len(toc), total
        )
        shm.buf[: len(header)] = header
        shm.buf[HEADER_SIZE : HEADER_SIZE + len(toc)] = toc
        for buf_name, array, rel in entries:
            if array.nbytes == 0:
                continue
            view = np.frombuffer(
                shm.buf, dtype=array.dtype, count=array.shape[0], offset=origin + rel
            )
            view[:] = array
            del view  # drop the exported pointer so close() stays possible
        if blob:
            shm.buf[origin + blob_rel : origin + blob_rel + len(blob)] = blob
    except BaseException:
        shm.close()
        shm.unlink()
        raise
    return shm


def read_segment_info(name: str) -> SegmentInfo:
    """Header + TOC of segment ``name`` (validates, decodes no objects)."""
    shm = shared_memory.SharedMemory(name=name)
    try:
        version, toc = _validated_toc(shm, name)
        return SegmentInfo(
            name=name,
            format_version=FORMAT_VERSION,
            snapshot_version=version,
            total_size=toc["__total__"],
            buffers=toc["buffers"],
            meta=toc["meta"],
        )
    finally:
        shm.close()


def _validated_toc(
    shm: shared_memory.SharedMemory, name: str
) -> tuple[int, dict[str, Any]]:
    if shm.size < HEADER_SIZE:
        raise SegmentError(f"segment {name!r} is smaller than the header")
    magic, fmt, _flags, version, toc_off, toc_len, total = _HEADER.unpack_from(
        shm.buf, 0
    )
    if magic != MAGIC:
        raise SegmentError(f"segment {name!r} carries no snapshot (bad magic)")
    if fmt != FORMAT_VERSION:
        raise SegmentError(
            f"segment {name!r} uses format {fmt}, this build reads {FORMAT_VERSION}"
        )
    if total > shm.size or toc_off + toc_len > shm.size:
        raise SegmentError(f"segment {name!r} is truncated")
    toc = json.loads(bytes(shm.buf[toc_off : toc_off + toc_len]).decode("utf-8"))
    toc["__total__"] = total
    return version, toc


def attach_snapshot(name: str) -> AttachedSnapshot:
    """Attach segment ``name`` and rehydrate it as a serving snapshot.

    Numeric buffers are zero-copy read-only views over the mapping; the
    graph object model is rebuilt per process from the pickled blob.  On
    any decode error the mapping is closed before the error propagates.
    """
    try:
        shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        raise SegmentError(f"no such segment: {name!r}") from None
    try:
        _version, toc = _validated_toc(shm, name)
        views: dict[str, np.ndarray] = {}
        for buf_name, entry in toc["buffers"].items():
            view = np.frombuffer(
                shm.buf,
                dtype=np.dtype(entry["dtype"]),
                count=entry["length"],
                offset=entry["offset"],
            )
            view.flags.writeable = False
            views[buf_name] = view
        objects = toc["objects"]
        blob = pickle.loads(
            bytes(shm.buf[objects["offset"] : objects["offset"] + objects["nbytes"]])
        )

        graph = _restore_graph(blob["graph"])
        augmented = _restore_graph(blob["augmented"])
        config = blob["config"]
        frame = GraphFrame.attach(
            graph,
            {k: views[k] for k in EXPORT_DTYPES},
            weight_property=blob["weight_property"],
        )
        frame.adopt_as_cache_of(graph)
        control, close, family, ubo = decode_rows(
            views, frame.nodes, blob["family_classes"]
        )

        store = GraphStore(augmented)
        for prop in config.index_properties:
            store.ensure_index(prop)

        snapshot = AttachedSnapshot(
            version=blob["version"],
            graph=graph,
            augmented=augmented,
            store=store,
            config=config,
            control=control,
            close_links=close,
            family_links=family,
            ubo=ubo,
            built_s=blob["built_s"],
            warm=blob["warm"],
            frame=frame,
            incremental=blob["incremental"],
        )
        snapshot.created_at = blob["created_at"]
        snapshot.segment_name = name
        snapshot.shm = shm
        snapshot.tenant = toc.get("meta", {}).get("tenant", DEFAULT_TENANT)
        return snapshot
    except BaseException:
        shm.close()
        raise


def unlink_segment(name: str) -> bool:
    """Best-effort unlink of segment ``name`` (creator-side cleanup).

    Returns whether a segment by that name existed.  The backing memory
    is freed by the kernel once the last attached process unmaps it.
    """
    try:
        shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    try:
        shm.unlink()  # unregisters from the tracker itself; no _untrack here
    finally:
        shm.close()
    return True
