"""Dependency-free asyncio HTTP/1.1 JSON server over KG snapshots.

The serving path, per request::

    accept -> admission control -> route (tenant, endpoint) -> LRU ->
    single-flight / micro-batch -> snapshot read (executor thread) -> JSON

Admission control keeps the event loop honest under overload: at most
``max_concurrency`` requests execute at once (semaphore); up to
``max_queue`` more may wait; anything beyond is rejected immediately
with **429**.  Every admitted request runs under a deadline
(``request_timeout_s``); expiry returns **504** while the executor
thread finishes in the background (its result still lands in the cache
for the next caller).  ``/healthz`` and ``/metrics`` bypass admission so
the service stays observable while saturated.

Multi-tenancy: the service serves every tenant bound in its
:class:`~repro.service.registry.GraphRegistry`.  Reasoning endpoints are
reachable both un-prefixed (they resolve to the *alias* tenant — the one
the service was seeded with, ``default`` unless renamed) and under
``/t/{tenant}/...``.  Tenant admin lives at ``/t`` / ``/t/{tenant}``.

Endpoints
---------

==============================  ==============================================
``GET /control``                control pairs; ``?source=&threshold=``
``GET /close-links``            close-link pairs; ``?threshold=``
``GET /ubo/{id}``               beneficial owners of a company; ``?threshold=``
``GET /family``                 detected personal links
``GET /neighbors/{id}``         a node with its incident edges; ``?depth=&label=``
``GET /stats``                  snapshot statistics (+ tenant, persist health)
``GET /healthz``                liveness + served snapshot version
``GET /metrics``                counters, histograms, per-tenant snapshot stats
``POST /mutations``             apply deltas, re-augment in background; ``?wait=1``
``GET /t``                      list tenants
``GET /t/{tenant}``             one tenant's info
``PUT /t/{tenant}``             create a tenant (idempotent)
``DELETE /t/{tenant}``          drop a tenant (the alias tenant is protected)
``/t/{tenant}/<reasoning>``     any reasoning endpoint, scoped to ``tenant``
==============================  ==============================================

Every read carries the snapshot version it was answered from, so clients
can observe exactly when a mutation's new version starts serving.
"""

from __future__ import annotations

import asyncio
import bisect
import json
import time
from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Awaitable, Callable, Sequence
from urllib.parse import parse_qsl, unquote, urlsplit

from ..graph.company_graph import COMPANY, CompanyGraph
from ..graph.property_graph import GraphError
from ..linkage.bayes import BayesianLinkClassifier
from ..telemetry import NULL_TRACER
from .cache import MicroBatcher, ReasoningCache
from .registry import (
    GraphRegistry,
    TenantError,
    UnknownTenantError,
    validate_tenant,
)
from .snapshot import (
    DEFAULT_TENANT,
    Snapshot,
    SnapshotBuilder,
    SnapshotConfig,
    SnapshotManager,
    snapshot_key,
)
from .updates import GraphUpdater, MutationError

_REASONS = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Endpoint names used for routing and as metrics keys.
_ENDPOINTS = (
    "control",
    "close-links",
    "ubo",
    "family",
    "neighbors",
    "stats",
    "healthz",
    "metrics",
    "mutations",
    "tenants",
)

#: Endpoints that may appear under a ``/t/{tenant}/`` prefix.  ``healthz``
#: and ``metrics`` stay process-level: one fleet, one liveness signal.
_TENANT_ENDPOINTS = (
    "control",
    "close-links",
    "ubo",
    "family",
    "neighbors",
    "stats",
    "mutations",
)


def _route(path: str) -> tuple[str | None, str, list[str]]:
    """Split a request path into ``(tenant, endpoint, rest)``.

    ``tenant`` is ``None`` for un-prefixed routes (the caller resolves
    them to the registry alias) and for ``GET /t`` (the tenant listing,
    endpoint ``"tenants"``).  ``/t/{name}`` routes to the ``"tenants"``
    admin endpoint with the tenant set; ``/t/{name}/<ep>/...`` routes to
    ``<ep>`` with the tenant set.
    """
    segments = [unquote(s) for s in path.strip("/").split("/") if s]
    if not segments:
        return None, "", []
    if segments[0] == "t":
        if len(segments) == 1:
            return None, "tenants", []
        if len(segments) == 2:
            return segments[1], "tenants", []
        return segments[1], segments[2], segments[3:]
    return None, segments[0], segments[1:]


@dataclass
class ServiceConfig:
    """Admission-control and caching knobs of the server."""

    host: str = "127.0.0.1"
    port: int = 8707
    #: requests executing at once; more wait on the semaphore
    max_concurrency: int = 32
    #: requests allowed to wait; beyond this the server answers 429
    max_queue: int = 128
    #: per-request deadline; expiry answers 504
    request_timeout_s: float = 30.0
    cache_capacity: int = 1024
    #: micro-batching of point lookups (/ubo, /neighbors)
    batch_max: int = 16
    batch_delay_s: float = 0.002
    max_body_bytes: int = 1 << 20


class HttpError(Exception):
    """An error with a definite HTTP status, rendered as a JSON body."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


class Metrics:
    """In-process counters exported at ``/metrics``.

    Latencies land in fixed buckets (milliseconds, cumulative-friendly
    layout: ``counts[i]`` is the number of requests whose latency fell in
    ``(BUCKETS_MS[i-1], BUCKETS_MS[i]]``, with a final overflow bucket).
    """

    BUCKETS_MS = (1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0)

    def __init__(self) -> None:
        self.started_at = time.time()
        self.requests: dict[str, int] = defaultdict(int)
        self.statuses: dict[str, int] = defaultdict(int)
        self.latency_sum_s: dict[str, float] = defaultdict(float)
        self.histogram: dict[str, list[int]] = {}
        #: requests per tenant (reasoning endpoints only) — the tenant
        #: dimension of the surface, merged across workers like any
        #: other counter
        self.tenant_requests: dict[str, int] = defaultdict(int)
        self.in_flight = 0
        self.queued = 0
        self.rejected_429 = 0
        self.timeouts_504 = 0
        self.bypass_requests = 0

    def observe(
        self,
        endpoint: str,
        seconds: float,
        status: int,
        bypass: bool = False,
        tenant: str | None = None,
    ) -> None:
        """Record one served request.

        ``bypass`` requests (``/healthz``, ``/metrics`` — they skip
        admission control) are counted but kept out of the latency sums
        and histograms: a monitoring poller scraping every second would
        otherwise dominate — and flatter — the latency distribution.
        """
        self.requests[endpoint] += 1
        self.statuses[f"{status // 100}xx"] += 1
        if tenant is not None:
            self.tenant_requests[tenant] += 1
        if bypass:
            self.bypass_requests += 1
            return
        self.latency_sum_s[endpoint] += seconds
        counts = self.histogram.setdefault(endpoint, [0] * (len(self.BUCKETS_MS) + 1))
        counts[bisect.bisect_left(self.BUCKETS_MS, seconds * 1000.0)] += 1

    def to_dict(self) -> dict[str, Any]:
        return {
            "uptime_s": round(time.time() - self.started_at, 3),
            "in_flight": self.in_flight,
            "queued": self.queued,
            "rejected_429": self.rejected_429,
            "timeouts_504": self.timeouts_504,
            "bypass_requests": self.bypass_requests,
            "requests": dict(self.requests),
            "statuses": dict(self.statuses),
            "tenant_requests": dict(self.tenant_requests),
            "latency_sum_s": {k: round(v, 6) for k, v in self.latency_sum_s.items()},
            "latency_buckets_ms": list(self.BUCKETS_MS),
            "latency_histogram": {k: list(v) for k, v in self.histogram.items()},
        }

    @classmethod
    def merge(cls, payloads: Sequence[dict[str, Any]]) -> dict[str, Any]:
        """Fold per-worker ``to_dict`` payloads into one cluster view.

        Counters and latency sums add; histograms add bucket-wise;
        ``uptime_s`` takes the oldest worker (the cluster has been up at
        least that long).
        """
        merged: dict[str, Any] = {
            "uptime_s": 0.0,
            "in_flight": 0,
            "queued": 0,
            "rejected_429": 0,
            "timeouts_504": 0,
            "bypass_requests": 0,
            "requests": {},
            "statuses": {},
            "tenant_requests": {},
            "latency_sum_s": {},
            "latency_buckets_ms": list(cls.BUCKETS_MS),
            "latency_histogram": {},
        }
        for payload in payloads:
            merged["uptime_s"] = max(merged["uptime_s"], payload.get("uptime_s", 0.0))
            for counter in (
                "in_flight",
                "queued",
                "rejected_429",
                "timeouts_504",
                "bypass_requests",
            ):
                merged[counter] += payload.get(counter, 0)
            for field in ("requests", "statuses", "tenant_requests", "latency_sum_s"):
                for key, value in payload.get(field, {}).items():
                    merged[field][key] = merged[field].get(key, 0) + value
            for key, counts in payload.get("latency_histogram", {}).items():
                into = merged["latency_histogram"].setdefault(key, [0] * len(counts))
                for i, count in enumerate(counts):
                    into[i] += count
        merged["latency_sum_s"] = {
            k: round(v, 6) for k, v in merged["latency_sum_s"].items()
        }
        return merged


class ReasoningService:
    """The HTTP reasoning API over a :class:`GraphRegistry` of tenants.

    The historical single-graph constructor still works: a bare
    ``manager`` (plus optional build chain) is adopted into a fresh
    registry under ``tenant`` (``default`` unless named), and the
    ``manager`` / ``updater`` attributes keep resolving to that alias
    tenant's binding.  Passing ``registry`` serves every tenant bound in
    it — one cache, one admission controller, disjoint keyspaces.
    """

    def __init__(
        self,
        manager: SnapshotManager | None = None,
        builder: SnapshotBuilder | None = None,
        base_graph: CompanyGraph | None = None,
        config: ServiceConfig | None = None,
        tracer=None,
        worker_id: int | None = None,
        registry: GraphRegistry | None = None,
        tenant: str = DEFAULT_TENANT,
    ):
        self.config = config if config is not None else ServiceConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: set under ``repro serve --workers N``; None when single-process
        self.worker_id = worker_id
        if registry is None:
            registry = GraphRegistry(tracer=self.tracer)
        self.registry = registry
        if manager is not None:
            self.registry.adopt(tenant, manager, builder=builder, base_graph=base_graph)
        elif len(self.registry) == 0:
            raise ValueError("service needs a manager or a non-empty registry")
        #: pool hook — routes ``POST /mutations`` to the builder process
        #: when this service has no local updater (read-only worker);
        #: called as ``(tenant, deltas, wait)``
        self.mutation_forwarder: (
            Callable[[str, list[Any], bool], Awaitable[tuple[int, Any]]] | None
        ) = None
        #: pool hook — routes tenant create/delete to the parent so the
        #: whole fleet (not one worker) gains or drops the tenant;
        #: called as ``(action, tenant)``
        self.admin_forwarder: (
            Callable[[str, str], Awaitable[tuple[int, Any]]] | None
        ) = None
        #: pool hook — answers ``GET /metrics?scope=cluster`` with the
        #: parent's merged per-worker counters
        self.cluster_metrics_provider: Callable[[], Awaitable[Any]] | None = None
        self.metrics = Metrics()
        self.cache = ReasoningCache(self.config.cache_capacity)
        self._semaphore = asyncio.Semaphore(self.config.max_concurrency)
        self._admin_lock = asyncio.Lock()
        self._ubo_batcher = MicroBatcher(
            self._ubo_batch, self.config.batch_max, self.config.batch_delay_s
        )
        self._neighbors_batcher = MicroBatcher(
            self._neighbors_batch, self.config.batch_max, self.config.batch_delay_s
        )
        self._server: asyncio.AbstractServer | None = None
        self.port: int | None = None

    @property
    def manager(self) -> SnapshotManager:
        """The alias (un-prefixed-route) tenant's snapshot manager."""
        return self.registry.get(self.registry.alias).manager

    @property
    def updater(self) -> GraphUpdater | None:
        """The alias tenant's updater, if this process builds for it."""
        binding = self.registry.peek(self.registry.alias)
        return binding.updater if binding is not None else None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self, reuse_port: bool = False) -> asyncio.AbstractServer:
        """Bind and start accepting; resolves ``self.port`` (for port 0).

        With ``reuse_port`` the socket is bound ``SO_REUSEPORT`` so N
        worker processes can each listen on the same address and let the
        kernel load-balance accepted connections between them.
        """
        self._server = await asyncio.start_server(
            self.handle_connection,
            self.config.host,
            self.config.port,
            reuse_port=reuse_port or None,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self._server

    async def run(self, ready: Callable[["ReasoningService"], None] | None = None) -> None:
        server = await self.start()
        if ready is not None:
            ready(self)
        async with server:
            await server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def drain(self, timeout_s: float = 10.0) -> bool:
        """Graceful shutdown: stop accepting, then wait for in-flight and
        queued requests to finish.  Returns whether the service went
        fully idle inside ``timeout_s``."""
        if self._server is not None:
            self._server.close()  # wait_closed() would wait on keep-alives
            self._server = None
        deadline = time.monotonic() + timeout_s
        while self.metrics.in_flight > 0 or self.metrics.queued > 0:
            if time.monotonic() >= deadline:
                return False
            await asyncio.sleep(0.01)
        return True

    # ------------------------------------------------------------------
    # connection handling (HTTP/1.1, keep-alive)
    # ------------------------------------------------------------------

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except HttpError as exc:
                    await self._write(writer, exc.status, {"error": exc.message}, False)
                    break
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                if request is None:
                    break
                method, target, headers, body = request
                keep_alive = headers.get("connection", "keep-alive").lower() != "close"
                split = urlsplit(target)
                query = dict(parse_qsl(split.query))
                started = time.perf_counter()
                endpoint, status, payload = await self.handle_request(
                    method, split.path, query, body
                )
                await self._write(writer, status, payload, keep_alive)
                if not keep_alive:
                    break
        except ConnectionError:
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], bytes] | None:
        line = await reader.readline()
        if not line or not line.strip():
            return None
        parts = line.decode("latin-1").strip().split(" ")
        if len(parts) != 3:
            raise HttpError(400, "malformed request line")
        method, target, _version = parts
        headers: dict[str, str] = {}
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, sep, value = header.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        body = b""
        length_header = headers.get("content-length")
        if length_header:
            try:
                length = int(length_header)
            except ValueError:
                raise HttpError(400, "bad Content-Length") from None
            if length < 0 or length > self.config.max_body_bytes:
                raise HttpError(413, f"body exceeds {self.config.max_body_bytes} bytes")
            if length:
                body = await reader.readexactly(length)
        return method.upper(), target, headers, body

    async def _write(
        self, writer: asyncio.StreamWriter, status: int, payload: Any, keep_alive: bool
    ) -> None:
        body = json.dumps(payload, default=str).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # request handling: admission -> routing -> payload
    # ------------------------------------------------------------------

    async def handle_request(
        self, method: str, path: str, query: dict[str, str], body: bytes
    ) -> tuple[str, int, Any]:
        """Returns ``(endpoint, status, json_payload)`` — also the entry
        point the tests and the benchmark drive directly."""
        tenant, head, rest = _route(path)
        endpoint = head if head in _ENDPOINTS else "unknown"
        started = time.perf_counter()
        bypass = endpoint in ("healthz", "metrics")
        with self.tracer.span(f"http.{endpoint}"):
            try:
                if bypass:
                    # observability must answer even when saturated
                    status, payload = await self._dispatch(
                        method, tenant, head, rest, query, body
                    )
                else:
                    status, payload = await self._admitted(
                        method, tenant, head, rest, query, body
                    )
            except HttpError as exc:
                status, payload = exc.status, {"error": exc.message}
            except (MutationError, TenantError) as exc:
                status, payload = 400, {"error": str(exc)}
            except UnknownTenantError as exc:
                status, payload = 404, {"error": str(exc)}
            except GraphError as exc:
                status, payload = 404, {"error": str(exc)}
            except Exception as exc:  # never leak a traceback to the socket
                status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        label = None
        if endpoint in _TENANT_ENDPOINTS:
            label = tenant if tenant is not None else self.registry.alias
        self.metrics.observe(
            endpoint,
            time.perf_counter() - started,
            status,
            bypass=bypass,
            tenant=label,
        )
        return endpoint, status, payload

    def _endpoint_name(self, path: str) -> str:
        head = _route(path)[1]
        return head if head in _ENDPOINTS else "unknown"

    async def _admitted(
        self,
        method: str,
        tenant: str | None,
        head: str,
        rest: list[str],
        query: dict[str, str],
        body: bytes,
    ) -> tuple[int, Any]:
        metrics = self.metrics
        config = self.config
        if (
            metrics.in_flight >= config.max_concurrency
            and metrics.queued >= config.max_queue
        ):
            metrics.rejected_429 += 1
            return 429, {
                "error": "server saturated",
                "in_flight": metrics.in_flight,
                "queued": metrics.queued,
            }
        metrics.queued += 1
        try:
            await self._semaphore.acquire()
        finally:
            metrics.queued -= 1
        metrics.in_flight += 1
        try:
            return await asyncio.wait_for(
                self._dispatch(method, tenant, head, rest, query, body),
                config.request_timeout_s,
            )
        except asyncio.TimeoutError:
            metrics.timeouts_504 += 1
            return 504, {
                "error": "deadline exceeded",
                "timeout_s": config.request_timeout_s,
            }
        finally:
            metrics.in_flight -= 1
            self._semaphore.release()

    async def _dispatch(
        self,
        method: str,
        tenant: str | None,
        head: str,
        rest: list[str],
        query: dict[str, str],
        body: bytes,
    ) -> tuple[int, Any]:
        if not head:
            raise HttpError(404, "no such endpoint; see /stats for the surface")
        if head == "tenants":
            return await self._tenants_admin(method, tenant)
        if tenant is not None and head not in _TENANT_ENDPOINTS:
            raise HttpError(
                404, f"no such tenant endpoint: {head} (process-level; drop the /t prefix)"
            )
        name = tenant if tenant is not None else self.registry.alias
        if head == "control" and not rest:
            self._require(method, "GET")
            return 200, await self._control(name, query)
        if head == "close-links" and not rest:
            self._require(method, "GET")
            return 200, await self._close_links(name, query)
        if head == "ubo" and len(rest) == 1:
            self._require(method, "GET")
            return 200, await self._ubo(name, rest[0], query)
        if head == "family" and not rest:
            self._require(method, "GET")
            return 200, await self._family(name)
        if head == "neighbors" and len(rest) == 1:
            self._require(method, "GET")
            return 200, await self._neighbors(name, rest[0], query)
        if head == "stats" and not rest:
            self._require(method, "GET")
            return 200, await self._stats(name)
        if head == "healthz" and not rest:
            self._require(method, "GET")
            return 200, self._healthz()
        if head == "metrics" and not rest:
            self._require(method, "GET")
            if (
                query.get("scope") == "cluster"
                and self.cluster_metrics_provider is not None
            ):
                return 200, await self.cluster_metrics_provider()
            return 200, self._metrics_payload()
        if head == "mutations" and not rest:
            self._require(method, "POST")
            return await self._mutations(name, query, body)
        target = head if not rest else "/".join([head, *rest])
        raise HttpError(404, f"no such endpoint: /{target}")

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise HttpError(405, f"use {expected}")

    # ------------------------------------------------------------------
    # tenant admin
    # ------------------------------------------------------------------

    async def _tenants_admin(
        self, method: str, tenant: str | None
    ) -> tuple[int, Any]:
        if tenant is None:
            self._require(method, "GET")
            return 200, {
                "alias": self.registry.alias,
                "tenants": [
                    binding.info()
                    for _, binding in sorted(self.registry.items())
                ],
            }
        if method == "GET":
            return 200, self.registry.get(tenant).info()
        if method == "PUT":
            return await self._create_tenant(tenant)
        if method == "DELETE":
            return await self._delete_tenant(tenant)
        raise HttpError(405, "use GET, PUT or DELETE")

    async def _create_tenant(self, tenant: str) -> tuple[int, Any]:
        validate_tenant(tenant)
        if self.admin_forwarder is not None:
            return await self.admin_forwarder("create", tenant)
        async with self._admin_lock:
            existing = self.registry.peek(tenant)
            if existing is not None:
                return 200, {"status": "exists", **existing.info()}
            # the initial (empty-graph) build is synchronous — run it off
            # the event loop like any other build
            binding = await asyncio.get_running_loop().run_in_executor(
                None, self.registry.create, tenant
            )
        return 201, {"status": "created", **binding.info()}

    async def _delete_tenant(self, tenant: str) -> tuple[int, Any]:
        if self.admin_forwarder is not None:
            return await self.admin_forwarder("delete", tenant)
        async with self._admin_lock:
            if tenant == self.registry.alias:
                raise HttpError(
                    400, f"cannot delete the alias tenant {tenant!r}"
                )
            binding = self.registry.drop(tenant)  # UnknownTenantError -> 404
            # a same-named tenant created later restarts at version 1;
            # stale cached payloads keyed (tenant, 1, ...) must not serve
            self.cache.evict_tenant(tenant)
        return 200, {
            "status": "deleted",
            "tenant": tenant,
            "version": binding.version,
        }

    # ------------------------------------------------------------------
    # endpoint implementations
    # ------------------------------------------------------------------

    async def _cached(self, key: Any, fn: Callable[[], Any]) -> Any:
        """LRU -> single-flight -> executor; ``fn`` is a sync snapshot read."""
        loop = asyncio.get_running_loop()

        async def compute() -> Any:
            return await loop.run_in_executor(None, fn)

        return await self.cache.get_or_compute(key, compute)

    async def _control(self, tenant: str, query: dict[str, str]) -> Any:
        source = query.get("source")
        threshold = _float_param(query, "threshold")
        snapshot = self.registry.get(tenant).manager.current
        key = snapshot_key(snapshot.version, "control", (source, threshold), tenant)
        return await self._cached(key, lambda: snapshot.control_payload(source, threshold))

    async def _close_links(self, tenant: str, query: dict[str, str]) -> Any:
        threshold = _float_param(query, "threshold")
        snapshot = self.registry.get(tenant).manager.current
        key = snapshot_key(snapshot.version, "close-links", (threshold,), tenant)
        return await self._cached(key, lambda: snapshot.close_links_payload(threshold))

    async def _family(self, tenant: str) -> Any:
        snapshot = self.registry.get(tenant).manager.current
        key = snapshot_key(snapshot.version, "family", (), tenant)
        return await self._cached(key, snapshot.family_payload)

    async def _stats(self, tenant: str) -> Any:
        binding = self.registry.get(tenant)
        snapshot = binding.manager.current
        key = snapshot_key(snapshot.version, "stats", (), tenant)
        payload = dict(await self._cached(key, snapshot.stats_payload))
        # identity fields land outside the cached payload: the cache is
        # version-keyed and must stay byte-identical across workers
        payload["snapshot_version"] = snapshot.version
        payload["worker_id"] = self.worker_id
        payload["tenant"] = binding.name
        if binding.updater is not None:
            updater = binding.updater
            payload["persist"] = {
                "persists": updater.persists,
                "persist_failures": updater.persist_failures,
                "last_persist_error": updater.last_persist_error,
            }
        return payload

    async def _ubo(self, tenant: str, company: str, query: dict[str, str]) -> Any:
        threshold = _float_param(query, "threshold")
        snapshot = self.registry.get(tenant).manager.current
        if not snapshot.graph.has_node(company):
            raise HttpError(404, f"unknown node: {company}")
        if snapshot.graph.node(company).label != COMPANY:
            raise HttpError(400, f"{company} is not a company")
        key = snapshot_key(snapshot.version, "ubo", (company, threshold), tenant)

        async def compute() -> Any:
            return await self._ubo_batcher.submit((tenant, snapshot, company, threshold))

        return await self.cache.get_or_compute(key, compute)

    async def _neighbors(self, tenant: str, node_id: str, query: dict[str, str]) -> Any:
        depth = _int_param(query, "depth", default=1, low=1, high=8)
        label = query.get("label")
        snapshot = self.registry.get(tenant).manager.current
        if not snapshot.augmented.has_node(node_id):
            raise HttpError(404, f"unknown node: {node_id}")
        key = snapshot_key(snapshot.version, "neighbors", (node_id, depth, label), tenant)

        async def compute() -> Any:
            return await self._neighbors_batcher.submit(
                (tenant, snapshot, node_id, depth, label)
            )

        return await self.cache.get_or_compute(key, compute)

    def _healthz(self) -> Any:
        try:
            version = self.manager.version
        except UnknownTenantError:
            version = None
        updater = self.updater if self.registry.alias in self.registry else None
        return {
            "status": "ok",
            "version": version,
            "worker_id": self.worker_id,
            "tenants": len(self.registry),
            "uptime_s": round(time.time() - self.metrics.started_at, 3),
            "rebuild_in_progress": (
                updater.rebuild_in_progress if updater else False
            ),
        }

    def _metrics_payload(self) -> Any:
        payload = self.metrics.to_dict()
        payload["worker_id"] = self.worker_id
        payload["cache"] = self.cache.stats()
        payload["batchers"] = {
            "ubo": self._ubo_batcher.stats(),
            "neighbors": self._neighbors_batcher.stats(),
        }
        payload["registry"] = self.registry.stats()
        tenants: dict[str, Any] = {}
        for name, binding in sorted(self.registry.items()):
            entry: dict[str, Any] = {
                "version": binding.manager.version,
                "swaps": binding.manager.swaps,
                "last_swap_pause_s": round(binding.manager.last_swap_pause_s, 6),
            }
            if binding.updater is not None:
                entry["updater"] = binding.updater.stats()
            tenants[name] = entry
        payload["tenants"] = tenants
        # alias-tenant views, kept for pre-tenancy dashboards
        alias = self.registry.peek(self.registry.alias)
        payload["snapshot_version"] = alias.manager.version if alias else None
        payload["snapshot"] = {
            "version": alias.manager.version if alias else None,
            "swaps": alias.manager.swaps if alias else 0,
            "last_swap_pause_s": (
                round(alias.manager.last_swap_pause_s, 6) if alias else 0.0
            ),
        }
        if alias is not None and alias.updater is not None:
            payload["updater"] = alias.updater.stats()
        return payload

    async def _mutations(
        self, tenant: str, query: dict[str, str], body: bytes
    ) -> tuple[int, Any]:
        binding = self.registry.get(tenant)
        if binding.updater is None and self.mutation_forwarder is None:
            raise HttpError(503, "mutations disabled: service started without a builder")
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"bad JSON body: {exc}") from None
        deltas = payload.get("deltas") if isinstance(payload, dict) else None
        if not isinstance(deltas, list):
            raise HttpError(400, 'body must be {"deltas": [...]}')
        wait = query.get("wait", "").lower() in ("1", "true", "yes")
        if binding.updater is None:
            assert self.mutation_forwarder is not None
            return await self.mutation_forwarder(tenant, deltas, wait)
        result = await binding.updater.apply(deltas, wait=wait)
        return (200 if wait else 202), result

    # ------------------------------------------------------------------
    # micro-batch functions (shared work across point lookups)
    # ------------------------------------------------------------------

    async def _ubo_batch(self, keys: list[Any]) -> dict[Any, Any]:
        return await asyncio.get_running_loop().run_in_executor(
            None, self._ubo_batch_sync, keys
        )

    @staticmethod
    def _ubo_batch_sync(keys: list[Any]) -> dict[Any, Any]:
        # grouping keeps the tenant in the group key: two tenants' point
        # lookups never share a solve even if their snapshots collide in
        # version and node ids
        groups: dict[tuple[str, Snapshot, float | None], list[str]] = {}
        for tenant, snapshot, company, threshold in keys:
            groups.setdefault((tenant, snapshot, threshold), []).append(company)
        results: dict[Any, Any] = {}
        for (tenant, snapshot, threshold), companies in groups.items():
            payloads = snapshot.ubo_payloads(companies, threshold)
            for company in companies:
                results[(tenant, snapshot, company, threshold)] = payloads[company]
        return results

    async def _neighbors_batch(self, keys: list[Any]) -> dict[Any, Any]:
        return await asyncio.get_running_loop().run_in_executor(
            None, self._neighbors_batch_sync, keys
        )

    @staticmethod
    def _neighbors_batch_sync(keys: list[Any]) -> dict[Any, Any]:
        return {
            key: key[1].neighbors_payload(key[2], depth=key[3], label=key[4])
            for key in keys
        }


def build_service(
    graph: CompanyGraph,
    config: ServiceConfig | None = None,
    snapshot_config: SnapshotConfig | None = None,
    classifiers: Sequence[BayesianLinkClassifier] | None = None,
    tracer=None,
    start_version: int = 0,
    tenant: str = DEFAULT_TENANT,
) -> ReasoningService:
    """Build the next version from ``graph``, publish it, wire the service.

    ``start_version`` seeds the builder's version counter — a service
    booting against a durable store with history passes the store's
    latest version so the freshly built snapshot extends it.  ``tenant``
    names the seeded (alias) tenant; un-prefixed routes resolve to it.
    """
    builder = SnapshotBuilder(
        snapshot_config, classifiers=classifiers, tracer=tracer,
        start_version=start_version,
    )
    manager = SnapshotManager()
    manager.publish(builder.build(graph))
    registry = GraphRegistry(
        snapshot_config=snapshot_config, classifiers=classifiers, tracer=tracer
    )
    return ReasoningService(
        manager,
        builder=builder,
        base_graph=graph,
        config=config,
        tracer=tracer,
        registry=registry,
        tenant=tenant,
    )


def _float_param(query: dict[str, str], name: str) -> float | None:
    raw = query.get(name)
    if raw is None or raw == "":
        return None
    try:
        return float(raw)
    except ValueError:
        raise HttpError(400, f"bad {name!r}: {raw!r} is not a number") from None


def _int_param(
    query: dict[str, str], name: str, default: int, low: int, high: int
) -> int:
    raw = query.get(name)
    if raw is None or raw == "":
        return default
    try:
        value = int(raw)
    except ValueError:
        raise HttpError(400, f"bad {name!r}: {raw!r} is not an integer") from None
    if not low <= value <= high:
        raise HttpError(400, f"bad {name!r}: must be in [{low}, {high}]")
    return value
