"""Caching primitives for the reasoning service.

Three cooperating pieces, all event-loop local (no thread locks — every
mutation happens on the loop; the heavy computations themselves run in
executor threads but their *registration* is loop-side):

* :class:`LRUCache` — a bounded mapping with hit/miss/eviction counters.
  Keys are ``(tenant, snapshot_version, endpoint, params)`` tuples (see
  :func:`~repro.service.snapshot.snapshot_key`): the tenant keeps
  co-hosted graphs in disjoint keyspaces, and the snapshot version makes
  entries for superseded versions age out naturally instead of needing
  invalidation.
* :class:`SingleFlight` — coalesces concurrent identical computations:
  the first caller becomes the leader and actually computes; followers
  await the leader's future.  N concurrent identical requests trigger
  exactly one underlying computation.
* :class:`MicroBatcher` — point lookups arriving within a short window
  are flushed as one batch to a batch function that can share work
  across keys (e.g. the per-person integrated-ownership solves behind
  ``/ubo/{id}``).

:class:`ReasoningCache` composes the first two into the read-through
cache the server uses for whole-relation endpoints.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from typing import Any, Awaitable, Callable, Hashable

#: Distinct "no cached value" marker (``None`` is a valid cached value).
_UNSET = object()


class LRUCache:
    """A bounded least-recently-used mapping with instrumentation."""

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable, default: Any = None) -> Any:
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            return default
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    def evict_prefix(self, prefix: Any) -> int:
        """Drop every entry whose tuple key leads with ``prefix``.

        Used when a tenant is deleted: a later same-named tenant restarts
        its version counter, so the dropped tenant's entries would
        otherwise be indistinguishable from the new tenant's.
        """
        doomed = [
            key
            for key in self._entries
            if isinstance(key, tuple) and key and key[0] == prefix
        ]
        for key in doomed:
            del self._entries[key]
        self.evictions += len(doomed)
        return len(doomed)

    def stats(self) -> dict[str, int]:
        return {
            "capacity": self.capacity,
            "size": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


class SingleFlight:
    """Coalesce concurrent calls with the same key into one computation.

    The supplier runs in a *detached* task rather than inline in the
    leader coroutine: if the leader's own request is cancelled (deadline,
    disconnect) the computation keeps running and every coalesced
    follower still gets the result.  Cancelling one waiter never
    propagates to the others — each awaits through its own shield.
    """

    def __init__(self) -> None:
        self._inflight: dict[Hashable, asyncio.Future] = {}
        self.leaders = 0
        self.coalesced = 0

    def inflight(self) -> int:
        return len(self._inflight)

    async def run(
        self, key: Hashable, supplier: Callable[[], Awaitable[Any]]
    ) -> Any:
        """Run ``supplier`` once per concurrent ``key``; share the result."""
        existing = self._inflight.get(key)
        if existing is not None:
            self.coalesced += 1
            return await asyncio.shield(existing)
        task = asyncio.get_running_loop().create_task(supplier())
        self._inflight[key] = task
        self.leaders += 1
        task.add_done_callback(lambda done, key=key: self._settle(key, done))
        return await asyncio.shield(task)

    def _settle(self, key: Hashable, task: "asyncio.Task") -> None:
        self._inflight.pop(key, None)
        if not task.cancelled():
            task.exception()  # mark retrieved even when every waiter left

    def stats(self) -> dict[str, int]:
        return {
            "leaders": self.leaders,
            "coalesced": self.coalesced,
            "inflight": len(self._inflight),
        }


class ReasoningCache:
    """Read-through LRU with single-flight fill.

    ``get_or_compute`` returns the cached value when present; otherwise
    exactly one of the concurrent callers computes, stores, and shares
    the result.  ``computations`` counts actual underlying computations.
    """

    def __init__(self, capacity: int = 1024):
        self.lru = LRUCache(capacity)
        self.flight = SingleFlight()

    @property
    def computations(self) -> int:
        return self.flight.leaders

    def evict_tenant(self, tenant: str) -> int:
        """Drop a deleted tenant's cached payloads (keys lead with it)."""
        return self.lru.evict_prefix(tenant)

    async def get_or_compute(
        self, key: Hashable, compute: Callable[[], Awaitable[Any]]
    ) -> Any:
        value = self.lru.get(key, _UNSET)
        if value is not _UNSET:
            return value

        async def fill() -> Any:
            result = await compute()
            self.lru.put(key, result)
            return result

        return await self.flight.run(key, fill)

    def stats(self) -> dict[str, Any]:
        return {**self.lru.stats(), **self.flight.stats()}


class MicroBatcher:
    """Flush point lookups arriving within ``max_delay_s`` as one batch.

    ``batch_fn`` is an async callable taking a list of distinct keys and
    returning ``{key: value}``.  Duplicate concurrent keys are coalesced
    onto the same future, so a batch never computes a key twice.  A batch
    is flushed early once ``max_batch`` distinct keys are pending.
    """

    def __init__(
        self,
        batch_fn: Callable[[list[Hashable]], Awaitable[dict[Hashable, Any]]],
        max_batch: int = 16,
        max_delay_s: float = 0.002,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self._batch_fn = batch_fn
        self.max_batch = max_batch
        self.max_delay_s = max_delay_s
        self._pending: dict[Hashable, list[asyncio.Future]] = {}
        self._flush_handle: asyncio.TimerHandle | None = None
        #: strong references to in-flight batch tasks — the event loop
        #: only keeps weak ones, so an unreferenced batch task can be
        #: garbage-collected mid-flight, stranding its waiters forever
        self._tasks: set[asyncio.Task] = set()
        self.requests = 0
        self.batches = 0
        self.batched_keys = 0

    async def submit(self, key: Hashable) -> Any:
        self.requests += 1
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.setdefault(key, []).append(future)
        if len(self._pending) >= self.max_batch:
            self._flush_pending(loop)
        elif self._flush_handle is None:
            self._flush_handle = loop.call_later(self.max_delay_s, self._flush_pending, loop)
        return await future

    def _flush_pending(self, loop: asyncio.AbstractEventLoop) -> None:
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        pending, self._pending = self._pending, {}
        if pending:
            task = loop.create_task(self._run_batch(pending))
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

    async def _run_batch(
        self, pending: dict[Hashable, list[asyncio.Future]]
    ) -> None:
        self.batches += 1
        self.batched_keys += len(pending)
        try:
            results = await self._batch_fn(list(pending))
        except BaseException as exc:  # propagate to every waiter
            for futures in pending.values():
                for future in futures:
                    if not future.done():
                        future.set_exception(exc)
            return
        for key, futures in pending.items():
            if key not in results:
                # a silently dropped key must not masquerade as a real
                # ``None`` value — surface the contract violation
                for future in futures:
                    if not future.done():
                        future.set_exception(
                            KeyError(f"batch function returned no value for key {key!r}")
                        )
                continue
            value = results[key]
            for future in futures:
                if not future.done():
                    future.set_result(value)

    def stats(self) -> dict[str, int]:
        return {
            "requests": self.requests,
            "batches": self.batches,
            "batched_keys": self.batched_keys,
            "pending": len(self._pending),
        }
