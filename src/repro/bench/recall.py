"""Recall methodology of Section 6.2 (Figure 4(e)).

The paper's protocol, reproduced step by step:

1. run Vada-Link in *no-cluster mode* (one cluster, exhaustive pairwise
   comparison) to produce all theoretically possible links — this
   augmented graph is the self-consistent ground truth ``S+``;
2. randomly remove a fraction (20%) of the predicted links;
3. re-run Vada-Link with ``k`` clusters;
4. recall = recovered predicted links / links predicted in no-cluster
   mode.

Because the candidate decisions are deterministic, any loss of recall is
attributable to the clustering assigning the two endpoints of a link to
different blocks — exactly the trade-off Figure 4(e) quantifies.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Sequence

from ..core.blocking import BlockingScheme, age_banded_person_blocker
from ..core.candidates import CandidateRule
from ..core.vadalink import VadaLink, VadaLinkConfig
from ..graph.company_graph import CompanyGraph

LinkTriple = tuple[object, object, str | None]


@dataclass
class RecallPoint:
    """Recall measured at one cluster count."""

    clusters: int
    recall: float
    comparisons: int
    elapsed_seconds: float


def predicted_links(result_edges) -> set[LinkTriple]:
    return {(edge.source, edge.target, edge.label) for edge in result_edges}


def no_cluster_ground_truth(
    graph: CompanyGraph,
    rules: Sequence[CandidateRule],
    config: VadaLinkConfig | None = None,
) -> set[LinkTriple]:
    """Step 1: exhaustive (single-cluster, single-block) augmentation."""
    base = config if config is not None else VadaLinkConfig()
    exhaustive = VadaLinkConfig(
        first_level_clusters=1,
        use_embeddings=False,
        node2vec=base.node2vec,
        embedding_features=base.embedding_features,
        blocking=BlockingScheme.exhaustive(),
        max_rounds=1,
        recursive=False,
    )
    result = VadaLink(list(rules), exhaustive).augment(graph)
    return predicted_links(result.new_edges)


def recall_at_clusters(
    graph: CompanyGraph,
    rules: Sequence[CandidateRule],
    truth_links: set[LinkTriple],
    clusters: int,
    config: VadaLinkConfig | None = None,
    removal_fraction: float = 0.2,
    seed: int = 0,
    blocker_factory: Callable[[int], BlockingScheme] | None = None,
) -> RecallPoint:
    """Steps 2-4 for one cluster count ``k``.

    Following Section 6.1's technique, the *number of clusters* is
    controlled by folding the second-level feature mapping into ``k``
    blocks (``blocker_factory``); the first level stays active so the
    recursive interplay the paper credits for robustness is exercised.
    """
    rng = random.Random(seed)
    removable = sorted(truth_links, key=str)
    rng.shuffle(removable)
    removed = set(removable[: int(len(removable) * removal_fraction)])

    # the evaluation graph starts from the ground truth *minus* removed links
    working = graph.copy()
    for x, y, label in truth_links - removed:
        if working.has_node(x) and working.has_node(y):
            working.add_edge(x, y, label)

    if blocker_factory is None:
        blocking = BlockingScheme({"P": age_banded_person_blocker(clusters)})
    else:
        blocking = blocker_factory(clusters)
    base = config if config is not None else VadaLinkConfig()
    clustered = VadaLinkConfig(
        first_level_clusters=max(1, min(clusters, 8)),
        use_embeddings=base.use_embeddings and clusters > 1,
        node2vec=base.node2vec,
        embedding_features=base.embedding_features,
        blocking=blocking,
        max_rounds=base.max_rounds,
        recursive=base.recursive,
    )
    for rule in rules:
        rule.invalidate()
    result = VadaLink(list(rules), clustered).augment(working)
    recovered = predicted_links(result.new_edges) & removed
    recall = len(recovered) / len(removed) if removed else 1.0
    return RecallPoint(
        clusters=clusters,
        recall=recall,
        comparisons=result.comparisons,
        elapsed_seconds=result.elapsed_seconds,
    )


def recall_curve(
    graph: CompanyGraph,
    rules: Sequence[CandidateRule],
    cluster_counts: Sequence[int],
    config: VadaLinkConfig | None = None,
    removal_fraction: float = 0.2,
    repeats: int = 3,
    seed: int = 0,
) -> list[RecallPoint]:
    """The full Figure 4(e) sweep, averaging ``repeats`` removals per k."""
    truth = no_cluster_ground_truth(graph, rules, config)
    points: list[RecallPoint] = []
    for clusters in cluster_counts:
        recalls: list[float] = []
        comparisons = 0
        elapsed = 0.0
        for repeat in range(repeats):
            point = recall_at_clusters(
                graph, rules, truth, clusters, config,
                removal_fraction, seed=seed * 1000 + repeat,
            )
            recalls.append(point.recall)
            comparisons += point.comparisons
            elapsed += point.elapsed_seconds
        points.append(
            RecallPoint(
                clusters=clusters,
                recall=sum(recalls) / len(recalls),
                comparisons=comparisons // repeats,
                elapsed_seconds=elapsed / repeats,
            )
        )
    return points
