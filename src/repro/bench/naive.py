"""The naive all-pairs baseline (the red line of Figure 4(a)).

Without clustering, link prediction must compare a quadratic number of
node pairs.  :func:`naive_family_detection` performs exactly that —
every ordered person pair through the classifiers — and is what
Vada-Link's clustered runtime is measured against.
"""

from __future__ import annotations

from typing import Sequence

from ..graph.company_graph import CompanyGraph
from ..linkage.bayes import BayesianLinkClassifier


def naive_family_detection(
    graph: CompanyGraph,
    classifiers: Sequence[BayesianLinkClassifier],
    threshold: float = 0.5,
) -> tuple[set[tuple[str, str, str]], int]:
    """All-pairs classification; returns (links, comparisons performed)."""
    persons = list(graph.persons())
    links: set[tuple[str, str, str]] = set()
    comparisons = 0
    for i, left in enumerate(persons):
        for j, right in enumerate(persons):
            if i == j:
                continue
            for classifier in classifiers:
                comparisons += 1
                if classifier.probability(left.properties, right.properties) > threshold:
                    links.add((left.id, right.id, classifier.link_class))
    return links, comparisons


def naive_comparison_count(n: int, link_classes: int = 3) -> int:
    """The comparison count the naive approach would perform (for plotting
    the quadratic reference line without actually running it at large n)."""
    return n * (n - 1) * link_classes
