"""Experiment harness: timers, workloads, baselines, recall protocol."""

from .harness import (
    Experiment,
    Measurement,
    check_shape,
    timed,
    timed_repeat,
    timed_traced,
)
from .naive import naive_comparison_count, naive_family_detection
from .recall import (
    RecallPoint,
    no_cluster_ground_truth,
    predicted_links,
    recall_at_clusters,
    recall_curve,
)
from .workloads import (
    CLUSTER_SWEEP,
    DENSITY_SCENARIOS,
    FIG4A_SIZES,
    FIG4B_SIZES,
    FIG4D_SIZES,
    dense_synthetic,
    density_scenario,
    ownership_pyramid,
    realworld_like,
)

__all__ = [
    "CLUSTER_SWEEP",
    "DENSITY_SCENARIOS",
    "Experiment",
    "FIG4A_SIZES",
    "FIG4B_SIZES",
    "FIG4D_SIZES",
    "Measurement",
    "RecallPoint",
    "check_shape",
    "dense_synthetic",
    "density_scenario",
    "naive_comparison_count",
    "naive_family_detection",
    "no_cluster_ground_truth",
    "ownership_pyramid",
    "predicted_links",
    "realworld_like",
    "recall_at_clusters",
    "recall_curve",
    "timed",
    "timed_repeat",
    "timed_traced",
]
