"""Experiment harness: timing, series collection and table rendering.

Every benchmark driver in ``benchmarks/`` builds an :class:`Experiment`,
runs its scenarios and prints the same series the paper's figure reports
— one row per x-value, columns per measured quantity — so the output can
be compared side by side with the published plot.
"""

from __future__ import annotations

import math
import statistics
import time
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass
class Measurement:
    """One (x, metrics) point of an experiment series.

    ``spans`` optionally carries the telemetry span tree of the measured
    run (``Tracer.to_dict()``), so benchmark records say not only *how
    long* but *where the time went*.
    """

    x: Any
    metrics: dict[str, float]
    spans: dict | None = None


@dataclass
class Experiment:
    """A named series of measurements (one paper figure or table)."""

    name: str
    x_label: str
    measurements: list[Measurement] = field(default_factory=list)

    def record(self, x: Any, spans: dict | None = None, **metrics: float) -> None:
        self.measurements.append(Measurement(x, metrics, spans=spans))

    def span_trees(self) -> list[tuple[Any, dict]]:
        """The (x, span tree) pairs of measurements that carried one."""
        return [(m.x, m.spans) for m in self.measurements if m.spans is not None]

    def series(self, metric: str) -> list[tuple[Any, float]]:
        return [(m.x, m.metrics[metric]) for m in self.measurements if metric in m.metrics]

    def render(self) -> str:
        """A fixed-width table: x column followed by each metric column."""
        if not self.measurements:
            return f"== {self.name} ==\n(no measurements)"
        metric_names: list[str] = []
        for measurement in self.measurements:
            for name in measurement.metrics:
                if name not in metric_names:
                    metric_names.append(name)
        header = [self.x_label] + metric_names
        rows = [header]
        for measurement in self.measurements:
            row = [_fmt(measurement.x)]
            for name in metric_names:
                value = measurement.metrics.get(name)
                row.append(_fmt(value) if value is not None else "-")
            rows.append(row)
        widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
        lines = [f"== {self.name} =="]
        for index, row in enumerate(rows):
            lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
            if index == 0:
                lines.append("  ".join("-" * width for width in widths))
        return "\n".join(lines)

    def print(self) -> None:
        print(self.render())

    def ascii_plot(
        self,
        metric: str,
        width: int = 60,
        height: int = 12,
        logx: bool = False,
        logy: bool = False,
    ) -> str:
        """A terminal scatter plot of one metric series.

        Renders the same curve the paper's figure shows, so the shape can
        be eyeballed straight from the benchmark output.  ``logx``/``logy``
        switch the axes to log scale (for the paper's log-log figures).
        """
        series = [
            (float(x), float(value))
            for x, value in self.series(metric)
            if isinstance(x, (int, float))
        ]
        if len(series) < 2:
            return f"({metric}: not enough numeric points to plot)"

        def transform(value: float, log: bool) -> float:
            return math.log10(max(value, 1e-12)) if log else value

        xs = [transform(x, logx) for x, _ in series]
        ys = [transform(y, logy) for _, y in series]
        x_lo, x_hi = min(xs), max(xs)
        y_lo, y_hi = min(ys), max(ys)
        x_span = (x_hi - x_lo) or 1.0
        y_span = (y_hi - y_lo) or 1.0

        grid = [[" "] * width for _ in range(height)]
        for x, y in zip(xs, ys):
            column = round((x - x_lo) / x_span * (width - 1))
            row = height - 1 - round((y - y_lo) / y_span * (height - 1))
            grid[row][column] = "*"

        raw_y_hi = max(value for _, value in series)
        raw_y_lo = min(value for _, value in series)
        lines = [f"{self.name} — {metric}"
                 f"{' (log x)' if logx else ''}{' (log y)' if logy else ''}"]
        for index, row in enumerate(grid):
            label = f"{raw_y_hi:.3g}" if index == 0 else (
                f"{raw_y_lo:.3g}" if index == height - 1 else ""
            )
            lines.append(f"{label:>9} |{''.join(row)}")
        raw_x_lo = min(x for x, _ in series)
        raw_x_hi = max(x for x, _ in series)
        lines.append(" " * 10 + "+" + "-" * width)
        lines.append(f"{'':>10} {raw_x_lo:<.3g}{'':>{max(1, width - 12)}}{raw_x_hi:.3g}")
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3f}"
        return f"{value:.4f}"
    return str(value)


def timed(function: Callable[[], Any]) -> tuple[Any, float]:
    """Run ``function`` once; return (result, elapsed seconds)."""
    started = time.perf_counter()
    result = function()
    return result, time.perf_counter() - started


def timed_traced(function: Callable[[Any], Any]) -> tuple[Any, float, dict]:
    """Run ``function(tracer)`` once under a live telemetry tracer.

    Returns (result, elapsed seconds, span tree dict) — the span tree is
    ready to attach to an :meth:`Experiment.record` call via ``spans=``.
    """
    from ..telemetry import Tracer

    tracer = Tracer("bench")
    started = time.perf_counter()
    result = function(tracer)
    elapsed = time.perf_counter() - started
    tracer.finish()
    return result, elapsed, tracer.to_dict()


def timed_repeat(
    function: Callable[[], Any], repeats: int = 3
) -> tuple[Any, float, float]:
    """Run ``function`` ``repeats`` times; return (last result, mean, stdev)."""
    durations: list[float] = []
    result: Any = None
    for _ in range(repeats):
        result, elapsed = timed(function)
        durations.append(elapsed)
    mean = statistics.fmean(durations)
    spread = statistics.stdev(durations) if len(durations) > 1 else 0.0
    return result, mean, spread


def check_shape(
    series: list[tuple[Any, float]],
    expectation: str,
    tolerance: float = 0.0,
) -> bool:
    """Validate the qualitative *shape* of a series.

    ``expectation`` is one of "increasing", "decreasing",
    "non-increasing", "non-decreasing".  ``tolerance`` allows small
    violations (fraction of the local value), since timing data is noisy.
    """
    values = [float(v) for _, v in series]
    if len(values) < 2:
        return True
    for before, after in zip(values, values[1:]):
        slack = tolerance * max(abs(before), 1e-12)
        if expectation in ("increasing", "non-decreasing") and after < before - slack:
            return False
        if expectation in ("decreasing", "non-increasing") and after > before + slack:
            return False
    return True
