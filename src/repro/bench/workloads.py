"""Workload builders — one per experiment of Section 6.

Each function returns the graph(s) and parameters the corresponding
figure sweeps, scaled to laptop size (the paper itself subsets its 4M-node
graph down to 1k-100k nodes; we subset further so that the pure-Python
substrate finishes in benchmark time — shapes, not absolute times, are
the reproduction target; see EXPERIMENTS.md).
"""

from __future__ import annotations

from ..datagen.barabasi import barabasi_company_graph
from ..datagen.company_generator import CompanySpec, GroundTruth, generate_company_graph
from ..graph.company_graph import CompanyGraph

#: Node-count sweep of Figure 4(a) (paper: 1k-100k persons, 20 sizes).
FIG4A_SIZES = (100, 200, 400, 800, 1600)
#: Node-count sweep of Figure 4(b) (paper: 1-10k nodes, 6 dense graphs).
FIG4B_SIZES = (100, 200, 400, 800, 1200, 1600)
#: Cluster sweep of Figures 4(c)/4(e) (paper: 1-500 clusters).
CLUSTER_SWEEP = (1, 2, 5, 10, 20, 50, 100, 200, 400, 500)
#: Density scenarios of Figure 4(d).
DENSITY_SCENARIOS = ("sparse", "normal", "dense", "superdense")
#: Node sizes of Figure 4(d) (paper: 1-1k nodes).
FIG4D_SIZES = (100, 200, 400, 700, 1000)


def realworld_like(persons: int, seed: int = 0) -> tuple[CompanyGraph, GroundTruth]:
    """A sparse scale-free graph with the Section 2 statistical profile.

    ``persons`` drives the subset size as in Figure 4(a); companies scale
    proportionally (the real graph mixes both roughly 50/50).
    """
    spec = CompanySpec(
        persons=persons,
        companies=max(10, int(persons * 0.8)),
        density="sparse",
        seed=seed,
    )
    return generate_company_graph(spec)


def dense_synthetic(persons: int, seed: int = 0) -> tuple[CompanyGraph, GroundTruth]:
    """Figure 4(b)'s stress graphs: same topology family, much higher density."""
    spec = CompanySpec(
        persons=persons,
        companies=max(10, int(persons * 0.8)),
        density="dense",
        seed=seed,
    )
    return generate_company_graph(spec)


def density_scenario(
    density: str, persons: int, seed: int = 0
) -> tuple[CompanyGraph, GroundTruth]:
    """One of Figure 4(d)'s four density presets at the given size."""
    spec = CompanySpec(
        persons=persons,
        companies=max(10, int(persons * 0.8)),
        density=density,
        seed=seed,
    )
    return generate_company_graph(spec)


def ownership_pyramid(companies: int, m: int = 2, seed: int = 0) -> CompanyGraph:
    """A pure company-company scale-free pyramid (control/close-link benches)."""
    return barabasi_company_graph(companies, m, seed)
