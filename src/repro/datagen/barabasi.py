"""Barabási–Albert scale-free graph generation (from scratch).

The paper's synthetic experiments use the Barabási algorithm [8] to grow
scale-free ownership networks of varying size and density.  We implement
preferential attachment directly: each new node attaches ``m`` edges to
existing nodes picked with probability proportional to their current
degree (realised with the classic "repeated nodes" list, which makes the
sampling O(1) per draw).
"""

from __future__ import annotations

import random

from ..graph.company_graph import CompanyGraph
from .distributions import random_shares
from .names import COMPANY_STEMS, CITIES, LEGAL_FORMS


def barabasi_albert_edges(
    n: int, m: int, rng: random.Random
) -> list[tuple[int, int]]:
    """Undirected BA attachment edges over nodes 0..n-1 (as ordered pairs
    new_node -> attached_node)."""
    if n <= 0:
        return []
    m = max(1, min(m, max(1, n - 1)))
    edges: list[tuple[int, int]] = []
    # start from a small clique-ish seed of m+1 nodes
    repeated: list[int] = []
    seed_size = min(n, m + 1)
    for node in range(seed_size):
        for other in range(node):
            edges.append((node, other))
            repeated.append(node)
            repeated.append(other)
    if not repeated and n > 1:
        repeated = [0, 1]
    for node in range(seed_size, n):
        targets: set[int] = set()
        while len(targets) < m:
            targets.add(rng.choice(repeated))
        for target in targets:
            edges.append((node, target))
            repeated.append(node)
            repeated.append(target)
    return edges


def barabasi_company_graph(
    n: int,
    m: int = 2,
    seed: int = 0,
    direction_down: bool = True,
) -> CompanyGraph:
    """A scale-free company graph with ``n`` companies and ~``n*m`` edges.

    Attachment edges become shareholdings; with ``direction_down`` the
    *older* (hub) node owns the newer one — matching real ownership
    pyramids where early incumbents become holding hubs.  Each company's
    incoming shares are normalised to sum to at most 1.
    """
    rng = random.Random(seed)
    graph = CompanyGraph()
    for node in range(n):
        stem = COMPANY_STEMS[node % len(COMPANY_STEMS)]
        graph.add_company(
            f"C{node}",
            name=f"{stem} {node} {LEGAL_FORMS[node % len(LEGAL_FORMS)]}",
            address=f"{CITIES[node % len(CITIES)]}",
            legal_form=LEGAL_FORMS[node % len(LEGAL_FORMS)],
        )
    raw_edges = barabasi_albert_edges(n, m, rng)
    # group by owned company to allocate share fractions
    owners_of: dict[int, list[int]] = {}
    for new_node, old_node in raw_edges:
        if direction_down:
            owner, owned = old_node, new_node
        else:
            owner, owned = new_node, old_node
        owners_of.setdefault(owned, []).append(owner)
    for owned, owners in owners_of.items():
        # keep some float so no company is fully held (total in (0.4, 1.0))
        total = 0.4 + 0.6 * rng.random()
        shares = random_shares(rng, len(owners), total)
        for owner, share in zip(owners, shares):
            if share > 0:
                graph.add_shareholding(f"C{owner}", f"C{owned}", min(share, 1.0))
    return graph
