"""Synthetic data: scale-free generators and the Italian-company surrogate."""

from .barabasi import barabasi_albert_edges, barabasi_company_graph
from .company_generator import (
    DENSITY_PRESETS,
    CompanySpec,
    GroundTruth,
    generate_company_graph,
)
from .distributions import (
    clipped_normal,
    power_law_int,
    random_shares,
    zipf_choice,
    zipf_sampler,
)

__all__ = [
    "CompanySpec",
    "DENSITY_PRESETS",
    "GroundTruth",
    "barabasi_albert_edges",
    "barabasi_company_graph",
    "clipped_normal",
    "generate_company_graph",
    "power_law_int",
    "random_shares",
    "zipf_choice",
    "zipf_sampler",
]
