"""Italian name/place pools for the synthetic company-database surrogate.

The real dataset (Italian Chambers of Commerce) is confidential; these
pools let the generator emit realistic-looking person and company
features with the right statistical character (a few very common
surnames, many rare ones — surname frequency is itself roughly Zipfian,
which matters for blocking experiments).
"""

from __future__ import annotations

MALE_FIRST_NAMES = (
    "Alessandro", "Andrea", "Antonio", "Bruno", "Carlo", "Claudio", "Dario",
    "Davide", "Diego", "Domenico", "Emanuele", "Enrico", "Fabio", "Federico",
    "Filippo", "Francesco", "Gabriele", "Giacomo", "Giancarlo", "Gianluca",
    "Giorgio", "Giovanni", "Giulio", "Giuseppe", "Guido", "Jacopo", "Leonardo",
    "Lorenzo", "Luca", "Luciano", "Luigi", "Marco", "Mario", "Massimo",
    "Matteo", "Maurizio", "Michele", "Nicola", "Paolo", "Pietro", "Riccardo",
    "Roberto", "Salvatore", "Sergio", "Simone", "Stefano", "Tommaso",
    "Umberto", "Valerio", "Vincenzo",
)

FEMALE_FIRST_NAMES = (
    "Alessandra", "Alice", "Anna", "Arianna", "Barbara", "Beatrice", "Bianca",
    "Camilla", "Carla", "Caterina", "Chiara", "Claudia", "Cristina", "Daniela",
    "Elena", "Eleonora", "Elisa", "Emma", "Federica", "Francesca", "Gaia",
    "Giada", "Giulia", "Giovanna", "Ilaria", "Irene", "Laura", "Lucia",
    "Ludovica", "Maria", "Marta", "Martina", "Michela", "Monica", "Paola",
    "Roberta", "Rosa", "Sara", "Serena", "Silvia", "Simona", "Sofia",
    "Stefania", "Teresa", "Valentina", "Valeria", "Vera", "Viola", "Vittoria",
    "Angela",
)

SURNAMES = (
    "Rossi", "Russo", "Ferrari", "Esposito", "Bianchi", "Romano", "Colombo",
    "Ricci", "Marino", "Greco", "Bruno", "Gallo", "Conti", "De Luca",
    "Mancini", "Costa", "Giordano", "Rizzo", "Lombardi", "Moretti",
    "Barbieri", "Fontana", "Santoro", "Mariani", "Rinaldi", "Caruso",
    "Ferrara", "Galli", "Martini", "Leone", "Longo", "Gentile", "Martinelli",
    "Vitale", "Lombardo", "Serra", "Coppola", "De Santis", "D'Angelo",
    "Marchetti", "Parisi", "Villa", "Conte", "Ferraro", "Ferri", "Fabbri",
    "Bianco", "Marini", "Grasso", "Valentini", "Messina", "Sala", "De Angelis",
    "Gatti", "Pellegrini", "Palumbo", "Sanna", "Farina", "Rizzi", "Monti",
    "Cattaneo", "Morelli", "Amato", "Silvestri", "Mazza", "Testa",
    "Grassi", "Pellegrino", "Carbone", "Giuliani", "Benedetti", "Barone",
    "Rossetti", "Caputo", "Montanari", "Guerra", "Palmieri", "Bernardi",
    "Martino", "Fiore", "De Rosa", "Ferretti", "Bellini", "Basile",
    "Riva", "Donati", "Piras", "Vitali", "Battaglia", "Sartori", "Neri",
    "Costantini", "Milani", "Pagano", "Ruggiero", "Sorrentino", "D'Amico",
    "Orlando", "Damico", "Negri",
)

CITIES = (
    "Roma", "Milano", "Napoli", "Torino", "Palermo", "Genova", "Bologna",
    "Firenze", "Bari", "Catania", "Venezia", "Verona", "Messina", "Padova",
    "Trieste", "Brescia", "Taranto", "Prato", "Parma", "Modena", "Reggio Calabria",
    "Reggio Emilia", "Perugia", "Ravenna", "Livorno", "Cagliari", "Foggia",
    "Rimini", "Salerno", "Ferrara", "Sassari", "Latina", "Giugliano", "Monza",
    "Siracusa", "Pescara", "Bergamo", "Forlì", "Trento", "Vicenza",
)

STREETS = (
    "Via Roma", "Via Garibaldi", "Corso Italia", "Via Dante", "Via Mazzini",
    "Via Verdi", "Piazza San Marco", "Via Cavour", "Viale Europa",
    "Via Marconi", "Via Leopardi", "Corso Vittorio Emanuele", "Via Manzoni",
    "Via XX Settembre", "Via della Repubblica", "Via Galilei", "Via Volta",
    "Via Colombo", "Via Petrarca", "Via Carducci",
)

LEGAL_FORMS = ("SRL", "SPA", "SNC", "SAS", "SRLS", "SCARL")

COMPANY_STEMS = (
    "Acciai", "Agri", "Alimenta", "Arredo", "Auto", "Banca", "Calzature",
    "Cantieri", "Caffè", "Chimica", "Costruzioni", "Dolciaria", "Edile",
    "Elettro", "Energia", "Enoteca", "Farma", "Finanziaria", "Fonderie",
    "Gelati", "Gomma", "Idraulica", "Immobiliare", "Industrie", "Lavorazioni",
    "Logistica", "Macchine", "Manifattura", "Marmi", "Meccanica", "Mobili",
    "Moda", "Navale", "Officine", "Olearia", "Ottica", "Pelletteria",
    "Pasta", "Ristorazione", "Sartoria", "Servizi", "Software", "Tessile",
    "Trasporti", "Turismo", "Vetreria", "Vini", "Zootecnica",
)
