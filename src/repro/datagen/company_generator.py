"""Synthetic surrogate for the Italian company database (Section 2).

The paper's dataset — 4M nodes, scale-free, avg degree ~1, highly
fragmented, with hubs and ~3K self-loops — is confidential.  This
generator produces graphs with the same statistical character at
laptop scale, plus *planted ground truth* for the link classes the
paper predicts (partner/sibling/parent links and family businesses),
which the accuracy experiments (Figure 4(e)) rely on.

Family model (following Italian civil records):

* two partners — each keeps their own surname (Italian custom), shared
  address, close birth years, opposite sex, usually different birth
  places;
* children — the father's surname and recorded father name (paternity
  is part of the civil record), birth place mostly the family's city,
  birth year one generation later, family address with probability 0.6.

Ground-truth links are: ``partner_of`` between the two partners,
``sibling_of`` between children, ``parent_of`` from each parent to each
child.  Some families additionally receive a *family business*: a
company whose shares are mostly spread across the members.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..graph.company_graph import FAMILY, CompanyGraph
from ..linkage.features import PARENT_OF, PARTNER_OF, SIBLING_OF
from .barabasi import barabasi_albert_edges
from .distributions import clipped_normal, random_shares, zipf_sampler
from .names import (
    CITIES,
    COMPANY_STEMS,
    FEMALE_FIRST_NAMES,
    LEGAL_FORMS,
    MALE_FIRST_NAMES,
    STREETS,
    SURNAMES,
)

#: Edge-volume multipliers per density preset (Figure 4(d) scenarios):
#: (company->company edges per company, person->company edges per person).
DENSITY_PRESETS: dict[str, tuple[float, float]] = {
    "sparse": (0.4, 0.6),
    "normal": (1.0, 1.0),
    "dense": (3.0, 2.0),
    "superdense": (8.0, 4.0),
}


@dataclass
class CompanySpec:
    """Parameters of a synthetic company graph."""

    persons: int = 500
    companies: int = 400
    density: str = "sparse"
    family_fraction: float = 0.6     # fraction of persons living in families
    family_business_rate: float = 0.5  # fraction of families owning a business
    self_loop_rate: float = 0.002    # buy-back frequency among companies
    feature_noise: float = 0.02      # typo/missing-value rate in person features
    add_family_nodes: bool = False   # materialise family nodes + membership edges
    seed: int = 0

    def __post_init__(self) -> None:
        if self.density not in DENSITY_PRESETS:
            raise ValueError(
                f"unknown density {self.density!r}; choose from {sorted(DENSITY_PRESETS)}"
            )


@dataclass
class GroundTruth:
    """What the generator planted (the answer key for accuracy experiments)."""

    families: dict[str, set[str]] = field(default_factory=dict)
    links: set[tuple[str, str, str]] = field(default_factory=set)  # (x, y, class)
    family_businesses: dict[str, set[str]] = field(default_factory=dict)  # family -> companies

    def pairs(self, link_class: str | None = None) -> set[tuple[str, str]]:
        """(x, y) pairs, optionally restricted to one link class."""
        return {
            (x, y) for x, y, c in self.links if link_class is None or c == link_class
        }

    def add_symmetric(self, x: str, y: str, link_class: str) -> None:
        self.links.add((x, y, link_class))
        self.links.add((y, x, link_class))


def generate_company_graph(spec: CompanySpec) -> tuple[CompanyGraph, GroundTruth]:
    """Generate a synthetic company graph and its planted ground truth."""
    graph = CompanyGraph()
    truth = generate_company_graph_into(graph, spec)
    return graph, truth


def generate_company_graph_into(graph, spec: CompanySpec) -> GroundTruth:
    """Generate the same graph into any ``CompanyGraph``-shaped sink.

    ``graph`` only needs the construction surface (``add_person`` /
    ``add_company`` / ``add_shareholding`` / ``add_node`` /
    ``add_edge``), so an out-of-core sink such as
    :class:`repro.storage.StreamingGraphWriter` receives the exact same
    node/edge stream — bit-identical RNG draws — as an in-memory
    :class:`CompanyGraph` for the same spec.
    """
    rng = random.Random(spec.seed)
    truth = GroundTruth()

    surname_sampler = zipf_sampler(rng, SURNAMES, exponent=1.1)
    city_sampler = zipf_sampler(rng, CITIES, exponent=1.0)

    person_ids = [f"P{i:06d}" for i in range(spec.persons)]
    _generate_persons(graph, truth, person_ids, spec, rng, surname_sampler, city_sampler)
    company_ids = [f"C{i:06d}" for i in range(spec.companies)]
    _generate_companies(graph, company_ids, rng, city_sampler)
    _generate_shareholdings(graph, truth, person_ids, company_ids, spec, rng)
    if spec.add_family_nodes:
        _materialise_family_nodes(graph, truth)
    return truth


# ----------------------------------------------------------------------
# persons and families
# ----------------------------------------------------------------------

def _new_address(rng: random.Random, city: str) -> str:
    street = rng.choice(STREETS)
    return f"{street} {rng.randint(1, 200)}, {city}"


def _person_features(
    rng: random.Random,
    surname: str,
    sex: str,
    birth_year: int,
    birth_place: str,
    address: str,
    father_name: str | None = None,
) -> dict:
    pool = MALE_FIRST_NAMES if sex == "M" else FEMALE_FIRST_NAMES
    return {
        "name": rng.choice(pool),
        "surname": surname,
        "sex": sex,
        "birth_date": f"{birth_year}-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}",
        "birth_place": birth_place,
        "address": address,
        # Italian civil records carry paternity; unknown fathers get a
        # random name so the feature is never a giveaway by absence
        "father_name": father_name or rng.choice(MALE_FIRST_NAMES),
    }


def _corrupt(rng: random.Random, features: dict, noise: float) -> dict:
    """Introduce record-linkage-realistic noise: typos and missing values."""
    if noise <= 0:
        return features
    corrupted = dict(features)
    if rng.random() < noise:  # surname typo (single substitution)
        surname = corrupted["surname"]
        if len(surname) > 2:
            position = rng.randrange(len(surname))
            corrupted["surname"] = (
                surname[:position] + rng.choice("aeiou") + surname[position + 1:]
            )
    if rng.random() < noise:  # missing birth place
        corrupted["birth_place"] = None
    return corrupted


def _generate_persons(
    graph: CompanyGraph,
    truth: GroundTruth,
    person_ids: list[str],
    spec: CompanySpec,
    rng: random.Random,
    surname_sampler,
    city_sampler,
) -> None:
    remaining = list(person_ids)
    family_population = int(len(remaining) * spec.family_fraction)
    family_index = 0

    while family_population >= 2 and len(remaining) >= 2:
        size = min(rng.choices((2, 3, 4, 5, 6), weights=(25, 25, 30, 15, 5))[0],
                   family_population, len(remaining))
        if size < 2:
            break
        members = [remaining.pop() for _ in range(size)]
        family_population -= size
        family_id = f"F{family_index:05d}"
        family_index += 1
        truth.families[family_id] = set(members)

        father_surname = surname_sampler()
        mother_surname = surname_sampler()  # spouses keep their surnames
        city = city_sampler()
        address = _new_address(rng, city)
        base_year = int(clipped_normal(rng, 1958, 12, 1930, 1985))

        father, mother = members[0], members[1]
        father_features = _person_features(
            rng, father_surname, "M", base_year,
            city_sampler() if rng.random() < 0.6 else city, address,
        )
        mother_features = _person_features(
            rng, mother_surname, "F", base_year + rng.randint(-8, 8),
            city_sampler() if rng.random() < 0.6 else city, address,
        )
        graph.add_person(father, **_corrupt(rng, father_features, spec.feature_noise))
        graph.add_person(mother, **_corrupt(rng, mother_features, spec.feature_noise))
        truth.add_symmetric(father, mother, PARTNER_OF)

        children = members[2:]
        child_year_base = base_year + rng.randint(24, 34)
        for offset, child in enumerate(children):
            child_features = _person_features(
                rng, father_surname,
                rng.choice("MF"),
                child_year_base + offset * rng.randint(1, 4),
                city if rng.random() < 0.8 else city_sampler(),
                address if rng.random() < 0.6 else _new_address(rng, city_sampler()),
                father_name=father_features["name"],
            )
            graph.add_person(child, **_corrupt(rng, child_features, spec.feature_noise))
            truth.links.add((father, child, PARENT_OF))
            truth.links.add((mother, child, PARENT_OF))
        for i, left in enumerate(children):
            for right in children[i + 1:]:
                truth.add_symmetric(left, right, SIBLING_OF)

    # singles
    for person in remaining:
        features = _person_features(
            rng,
            surname_sampler(),
            rng.choice("MF"),
            int(clipped_normal(rng, 1965, 15, 1930, 1998)),
            city_sampler(),
            _new_address(rng, city_sampler()),
        )
        graph.add_person(person, **_corrupt(rng, features, spec.feature_noise))


# ----------------------------------------------------------------------
# companies and shareholdings
# ----------------------------------------------------------------------

def _generate_companies(
    graph: CompanyGraph,
    company_ids: list[str],
    rng: random.Random,
    city_sampler,
) -> None:
    for index, company in enumerate(company_ids):
        stem = rng.choice(COMPANY_STEMS)
        legal_form = rng.choice(LEGAL_FORMS)
        city = city_sampler()
        graph.add_company(
            company,
            name=f"{stem} {city} {legal_form}",
            address=_new_address(rng, city),
            incorporation_date=f"{rng.randint(1960, 2018)}-{rng.randint(1, 12):02d}-01",
            legal_form=legal_form,
        )


def _generate_shareholdings(
    graph: CompanyGraph,
    truth: GroundTruth,
    person_ids: list[str],
    company_ids: list[str],
    spec: CompanySpec,
    rng: random.Random,
) -> None:
    if not company_ids:
        return
    company_rate, person_rate = DENSITY_PRESETS[spec.density]

    # budget of each company's equity still assignable (keeps totals <= 1)
    available: dict[str, float] = {company: 1.0 for company in company_ids}

    def grant(owner: str, company: str, requested: float) -> None:
        if owner == company and spec.self_loop_rate <= 0:
            return
        share = round(min(requested, available.get(company, 0.0)), 6)
        if share <= 0.001:
            return
        graph.add_shareholding(owner, company, share)
        available[company] -= share

    # 1) family businesses: members split a controlling stake
    for family_id, members in truth.families.items():
        if rng.random() > spec.family_business_rate:
            continue
        business = rng.choice(company_ids)
        members_list = sorted(members)
        stake = 0.5 + 0.4 * rng.random()
        shares = random_shares(rng, len(members_list), stake)
        for member, share in zip(members_list, shares):
            grant(member, business, share)
        truth.family_businesses.setdefault(family_id, set()).add(business)

    # denser presets must slice the (fixed) equity of each company into
    # proportionally smaller stakes, or the 100% budget caps the density
    person_slice = 1.0 / max(1.0, person_rate)
    company_slice = 1.0 / max(1.0, company_rate)

    # 2) person -> company ownership (scale-free-ish: few persons own many)
    person_edges = int(len(person_ids) * person_rate)
    if person_ids:
        hub_persons = rng.sample(person_ids, max(1, len(person_ids) // 20))
        for _ in range(person_edges):
            if rng.random() < 0.3:
                owner = rng.choice(hub_persons)
            else:
                owner = rng.choice(person_ids)
            company = rng.choice(company_ids)
            grant(owner, company, (0.05 + 0.6 * rng.random()) * person_slice)

    # 3) company -> company pyramid via preferential attachment
    m = max(1, round(company_rate))
    ba_edges = barabasi_albert_edges(len(company_ids), m, rng)
    target_edges = int(len(company_ids) * company_rate)
    rng.shuffle(ba_edges)
    for new_node, old_node in ba_edges[:target_edges]:
        owner = company_ids[old_node]   # older hub owns the newer company
        owned = company_ids[new_node]
        if owner == owned:
            continue
        grant(owner, owned, (0.1 + 0.7 * rng.random()) * company_slice)

    # 4) buy-backs: self-loops, a documented artefact of the real data
    for company in company_ids:
        if rng.random() < spec.self_loop_rate:
            grant(company, company, 0.01 + 0.05 * rng.random())


def _materialise_family_nodes(graph: CompanyGraph, truth: GroundTruth) -> None:
    """Add a node per family and ``family``-labelled membership edges,
    the input shape expected by Algorithm 8 (family control)."""
    for family_id, members in truth.families.items():
        graph.add_node(family_id, "F")
        for member in sorted(members):
            graph.add_edge(member, family_id, FAMILY)
