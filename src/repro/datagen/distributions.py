"""Seedable sampling helpers: Zipf-like picks, power laws, clipped normals.

Real-world company graphs are scale-free (Section 2 of the paper) and so
are many of their feature distributions (surname frequencies, city
sizes).  These helpers keep all sampling deterministic per seed.
"""

from __future__ import annotations

import math
import random
from typing import Sequence, TypeVar

T = TypeVar("T")


def zipf_choice(rng: random.Random, items: Sequence[T], exponent: float = 1.0) -> T:
    """Pick an item with probability proportional to 1 / rank^exponent."""
    weights = [1.0 / (rank ** exponent) for rank in range(1, len(items) + 1)]
    return rng.choices(items, weights=weights, k=1)[0]


def zipf_sampler(rng: random.Random, items: Sequence[T], exponent: float = 1.0):
    """A closure sampling repeatedly from the same Zipf weights (precomputed)."""
    weights = [1.0 / (rank ** exponent) for rank in range(1, len(items) + 1)]
    cumulative: list[float] = []
    total = 0.0
    for weight in weights:
        total += weight
        cumulative.append(total)

    def sample() -> T:
        threshold = rng.random() * total
        lo, hi = 0, len(cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < threshold:
                lo = mid + 1
            else:
                hi = mid
        return items[lo]

    return sample


def power_law_int(rng: random.Random, minimum: int, maximum: int, alpha: float = 2.5) -> int:
    """Integer from a bounded power law P(k) ~ k^-alpha via inverse transform."""
    if minimum >= maximum:
        return minimum
    u = rng.random()
    one_minus = 1.0 - alpha
    lo = minimum ** one_minus
    hi = (maximum + 1) ** one_minus
    value = (lo + u * (hi - lo)) ** (1.0 / one_minus)
    return max(minimum, min(maximum, int(value)))


def clipped_normal(rng: random.Random, mean: float, std: float, lo: float, hi: float) -> float:
    """Normal sample clipped to [lo, hi]."""
    return max(lo, min(hi, rng.gauss(mean, std)))


def random_shares(rng: random.Random, owners: int, total: float = 1.0) -> list[float]:
    """Split ``total`` into ``owners`` positive fractions (Dirichlet-like).

    Uses exponential spacings; each share is strictly positive and the
    sum equals ``total`` up to floating error.
    """
    if owners <= 0:
        return []
    cuts = [-math.log(max(rng.random(), 1e-12)) for _ in range(owners)]
    scale = total / sum(cuts)
    return [cut * scale for cut in cuts]
