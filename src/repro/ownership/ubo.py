"""Ultimate beneficial owners (UBO) — an anti-money-laundering extension.

The paper motivates its graph with AML among the central-bank use cases.
EU AML directives define a company's *ultimate beneficial owners* as the
natural persons whose (direct plus indirect) ownership meets a threshold
— canonically 25%.  With integrated ownership in hand (the walk-sum of
:mod:`repro.ownership.matrix`, cycle-safe), UBO detection is a filter:

    UBO(c) = { p person : Y[p, c] >= threshold }

plus the *controller of last resort*: the person controlling the company
through the vote-majority relation (Definition 2.3) even when below the
ownership threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..graph.columnar import GraphFrame
from ..graph.company_graph import CompanyGraph
from ..graph.property_graph import NodeId
from .control import CONTROL_THRESHOLD, controlled_by
from .matrix import integrated_ownership_from

#: EU AMLD beneficial-ownership threshold.
UBO_THRESHOLD = 0.25


@dataclass(frozen=True)
class BeneficialOwner:
    """One detected beneficial owner of a company."""

    person: NodeId
    company: NodeId
    integrated_share: float
    controls: bool

    @property
    def basis(self) -> str:
        if self.integrated_share >= UBO_THRESHOLD and self.controls:
            return "ownership+control"
        if self.integrated_share >= UBO_THRESHOLD:
            return "ownership"
        return "control"


def beneficial_owners(
    graph: CompanyGraph,
    company: NodeId,
    threshold: float = UBO_THRESHOLD,
    control_threshold: float = CONTROL_THRESHOLD,
) -> list[BeneficialOwner]:
    """The beneficial owners of one company, sorted by integrated share.

    A person qualifies through integrated ownership >= ``threshold`` or
    through vote-majority control (Definition 2.3).  The per-person
    integrated-ownership solves all run against the graph frame's one
    cached ``splu`` factorisation.
    """
    GraphFrame.of(graph).ownership_system()  # factorise once before the sweep
    owners: dict[NodeId, BeneficialOwner] = {}
    for person_node in graph.persons():
        person = person_node.id
        integrated = integrated_ownership_from(graph, person).get(company, 0.0)
        controls = company in controlled_by(graph, person, control_threshold)
        if integrated >= threshold or controls:
            owners[person] = BeneficialOwner(person, company, integrated, controls)
    return sorted(owners.values(), key=lambda o: (-o.integrated_share, str(o.person)))


def beneficial_owner_rows(
    graph: CompanyGraph,
    control_threshold: float = CONTROL_THRESHOLD,
    persons: "Iterable[NodeId] | None" = None,
) -> tuple[dict[NodeId, dict[NodeId, float]], dict[NodeId, set[NodeId]]]:
    """Per-person ``(integrated ownership, controlled set)`` rows.

    One triangular solve and one control fixpoint per person, all against
    the graph frame's single cached factorisation.  ``persons`` restricts
    the sweep (the incremental snapshot maintainer recomputes only the
    persons whose reachable region a delta touched); the default sweeps
    every person in the graph.
    """
    GraphFrame.of(graph).ownership_system()  # factorise once before the sweep
    if persons is None:
        persons = [node.id for node in graph.persons()]
    integrated: dict[NodeId, dict[NodeId, float]] = {}
    controlled: dict[NodeId, set[NodeId]] = {}
    for person in persons:
        integrated[person] = integrated_ownership_from(graph, person)
        controlled[person] = controlled_by(graph, person, control_threshold)
    return integrated, controlled


def assemble_beneficial_owners(
    graph: CompanyGraph,
    integrated: dict[NodeId, dict[NodeId, float]],
    controlled: dict[NodeId, set[NodeId]],
    threshold: float = UBO_THRESHOLD,
) -> dict[NodeId, list[BeneficialOwner]]:
    """Assemble the company -> owners index from per-person rows.

    Iterates each person's own (sparse) row instead of the full
    person x company cross product; the final per-company sort is total
    (share descending, then person id), so the result is independent of
    row iteration order and bit-identical to the historical dense loop.
    """
    company_ids = {node.id for node in graph.companies()}
    owners_by_company: dict[NodeId, list[BeneficialOwner]] = {}
    for person, shares in integrated.items():
        controls = controlled.get(person, set())
        for company in set(shares) | controls:
            if company not in company_ids:
                continue
            share = shares.get(company, 0.0)
            is_controller = company in controls
            if share >= threshold or is_controller:
                owners_by_company.setdefault(company, []).append(
                    BeneficialOwner(person, company, share, is_controller)
                )
    result: dict[NodeId, list[BeneficialOwner]] = {}
    for company_node in graph.companies():  # preserve historical key order
        company = company_node.id
        owners = owners_by_company.get(company)
        if owners:
            result[company] = sorted(
                owners, key=lambda o: (-o.integrated_share, str(o.person))
            )
    return result


def all_beneficial_owners(
    graph: CompanyGraph,
    threshold: float = UBO_THRESHOLD,
    control_threshold: float = CONTROL_THRESHOLD,
) -> dict[NodeId, list[BeneficialOwner]]:
    """company -> beneficial owners, computed with one solve per person."""
    integrated, controlled = beneficial_owner_rows(graph, control_threshold)
    return assemble_beneficial_owners(graph, integrated, controlled, threshold)


def opaque_companies(
    graph: CompanyGraph,
    threshold: float = UBO_THRESHOLD,
) -> list[NodeId]:
    """Companies with NO detectable beneficial owner — the AML red flags.

    Ownership so dispersed (or circular) that no natural person crosses
    the threshold and nobody holds vote-majority control.
    """
    with_owners = all_beneficial_owners(graph, threshold)
    return sorted(
        (node.id for node in graph.companies() if node.id not in with_owners),
        key=str,
    )
