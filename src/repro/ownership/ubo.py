"""Ultimate beneficial owners (UBO) — an anti-money-laundering extension.

The paper motivates its graph with AML among the central-bank use cases.
EU AML directives define a company's *ultimate beneficial owners* as the
natural persons whose (direct plus indirect) ownership meets a threshold
— canonically 25%.  With integrated ownership in hand (the walk-sum of
:mod:`repro.ownership.matrix`, cycle-safe), UBO detection is a filter:

    UBO(c) = { p person : Y[p, c] >= threshold }

plus the *controller of last resort*: the person controlling the company
through the vote-majority relation (Definition 2.3) even when below the
ownership threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph.columnar import GraphFrame
from ..graph.company_graph import CompanyGraph
from ..graph.property_graph import NodeId
from .control import CONTROL_THRESHOLD, controlled_by
from .matrix import integrated_ownership_from

#: EU AMLD beneficial-ownership threshold.
UBO_THRESHOLD = 0.25


@dataclass(frozen=True)
class BeneficialOwner:
    """One detected beneficial owner of a company."""

    person: NodeId
    company: NodeId
    integrated_share: float
    controls: bool

    @property
    def basis(self) -> str:
        if self.integrated_share >= UBO_THRESHOLD and self.controls:
            return "ownership+control"
        if self.integrated_share >= UBO_THRESHOLD:
            return "ownership"
        return "control"


def beneficial_owners(
    graph: CompanyGraph,
    company: NodeId,
    threshold: float = UBO_THRESHOLD,
    control_threshold: float = CONTROL_THRESHOLD,
) -> list[BeneficialOwner]:
    """The beneficial owners of one company, sorted by integrated share.

    A person qualifies through integrated ownership >= ``threshold`` or
    through vote-majority control (Definition 2.3).  The per-person
    integrated-ownership solves all run against the graph frame's one
    cached ``splu`` factorisation.
    """
    GraphFrame.of(graph).ownership_system()  # factorise once before the sweep
    owners: dict[NodeId, BeneficialOwner] = {}
    for person_node in graph.persons():
        person = person_node.id
        integrated = integrated_ownership_from(graph, person).get(company, 0.0)
        controls = company in controlled_by(graph, person, control_threshold)
        if integrated >= threshold or controls:
            owners[person] = BeneficialOwner(person, company, integrated, controls)
    return sorted(owners.values(), key=lambda o: (-o.integrated_share, str(o.person)))


def all_beneficial_owners(
    graph: CompanyGraph,
    threshold: float = UBO_THRESHOLD,
    control_threshold: float = CONTROL_THRESHOLD,
) -> dict[NodeId, list[BeneficialOwner]]:
    """company -> beneficial owners, computed with one solve per person."""
    integrated: dict[NodeId, dict[NodeId, float]] = {}
    controlled: dict[NodeId, set[NodeId]] = {}
    for person_node in graph.persons():
        person = person_node.id
        integrated[person] = integrated_ownership_from(graph, person)
        controlled[person] = controlled_by(graph, person, control_threshold)

    result: dict[NodeId, list[BeneficialOwner]] = {}
    for company_node in graph.companies():
        company = company_node.id
        owners = []
        for person in integrated:
            share = integrated[person].get(company, 0.0)
            is_controller = company in controlled[person]
            if share >= threshold or is_controller:
                owners.append(BeneficialOwner(person, company, share, is_controller))
        if owners:
            result[company] = sorted(
                owners, key=lambda o: (-o.integrated_share, str(o.person))
            )
    return result


def opaque_companies(
    graph: CompanyGraph,
    threshold: float = UBO_THRESHOLD,
) -> list[NodeId]:
    """Companies with NO detectable beneficial owner — the AML red flags.

    Ownership so dispersed (or circular) that no natural person crosses
    the threshold and nobody holds vote-majority control.
    """
    with_owners = all_beneficial_owners(graph, threshold)
    return sorted(
        (node.id for node in graph.companies() if node.id not in with_owners),
        key=str,
    )
