"""Accumulated ownership and close links (Definitions 2.5 and 2.6).

The accumulated ownership of x over y, ``Phi(x, y)``, is the sum over all
simple paths from x to y of the product of the shares along the path.
Two companies x and y are *closely linked* for threshold t when
``Phi(x,y) >= t``, or ``Phi(y,x) >= t``, or some third party z has
``Phi(z,x) >= t`` and ``Phi(z,y) >= t`` (the ECB's "common third party
owning more than 20% of both" rule — t defaults to 0.2).

Two evaluation strategies are provided:

* :func:`accumulated_ownership` — exact simple-path enumeration, always
  correct, worst-case exponential (the paper acknowledges path
  enumeration as the worst case);
* :func:`accumulated_ownership_dag` — linear-time dynamic programming
  used automatically when the graph is acyclic (on a DAG every path is
  simple, so the DP is exact and much faster).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..graph.company_graph import SHAREHOLDING, CompanyGraph
from ..graph.property_graph import NodeId
from .paths import path_weight, simple_paths

#: ECB regulation threshold for closely-linked entities.
CLOSE_LINK_THRESHOLD = 0.2


def accumulated_ownership(
    graph: CompanyGraph,
    source: NodeId,
    target: NodeId,
    max_depth: int | None = None,
    max_paths: int | None = None,
) -> float:
    """Exact ``Phi(source, target)`` by simple-path enumeration."""
    total = 0.0
    for path in simple_paths(graph, source, target, max_depth=max_depth, max_paths=max_paths):
        total += path_weight(graph, path)
    return total


def accumulated_ownership_from(
    graph: CompanyGraph,
    source: NodeId,
    max_depth: int | None = None,
) -> dict[NodeId, float]:
    """``Phi(source, y)`` for every y reachable from ``source``.

    Enumerates simple paths once from ``source`` (DFS with the running
    product), accumulating into a per-target total — cheaper than calling
    :func:`accumulated_ownership` per target.
    """
    totals: dict[NodeId, float] = {}
    if not graph.has_node(source):
        return totals

    def distinct_holdings(node: NodeId) -> list[tuple[NodeId, float]]:
        merged: dict[NodeId, float] = {}
        for edge in graph.out_edges(node, SHAREHOLDING):
            merged[edge.target] = merged.get(edge.target, 0.0) + edge.get("w", 0.0)
        return list(merged.items())

    on_path: set[NodeId] = {source}
    # stack holds (iterator over (child, share), running product)
    stack: list = [(iter(distinct_holdings(source)), 1.0)]
    path: list[NodeId] = [source]
    while stack:
        children, product = stack[-1]
        entry = next(children, None)
        if entry is None:
            stack.pop()
            on_path.discard(path.pop())
            continue
        child, share = entry
        if child in on_path:
            continue
        weight = product * share
        totals[child] = totals.get(child, 0.0) + weight
        if max_depth is not None and len(path) >= max_depth:
            continue
        path.append(child)
        on_path.add(child)
        stack.append((iter(distinct_holdings(child)), weight))
    return totals


def is_acyclic(graph: CompanyGraph) -> bool:
    """True when the shareholding graph has no directed cycle (self-loops count)."""
    state: dict[NodeId, int] = {}  # 0 = in progress, 1 = done
    for root in graph.node_ids():
        if root in state:
            continue
        stack: list = [(root, iter(list(graph.successors(root, SHAREHOLDING))))]
        state[root] = 0
        while stack:
            node, children = stack[-1]
            advanced = False
            for child in children:
                if child not in state:
                    state[child] = 0
                    stack.append((child, iter(list(graph.successors(child, SHAREHOLDING)))))
                    advanced = True
                    break
                if state[child] == 0:
                    return False
            if not advanced:
                state[node] = 1
                stack.pop()
    return True


def accumulated_ownership_dag(graph: CompanyGraph, source: NodeId) -> dict[NodeId, float]:
    """``Phi(source, y)`` for all y, by topological DP (graph must be acyclic).

    On a DAG every directed path is simple, so
    ``Phi(source, y) = sum over predecessors p of Phi(source, p) * w(p, y)``
    (with ``Phi(source, source) = 1``) computed in topological order.
    """
    # Kahn's topological order restricted to nodes reachable from source.
    reachable: set[NodeId] = {source}
    frontier = [source]
    while frontier:
        node = frontier.pop()
        for successor in graph.successors(node, SHAREHOLDING):
            if successor not in reachable:
                reachable.add(successor)
                frontier.append(successor)

    in_degree: dict[NodeId, int] = {node: 0 for node in reachable}
    for node in reachable:
        for successor in graph.successors(node, SHAREHOLDING):
            if successor in reachable:
                in_degree[successor] += 1

    phi: dict[NodeId, float] = {source: 1.0}
    queue = [node for node, degree in in_degree.items() if degree == 0]
    order: list[NodeId] = []
    while queue:
        node = queue.pop()
        order.append(node)
        for successor in graph.successors(node, SHAREHOLDING):
            if successor not in reachable:
                continue
            in_degree[successor] -= 1
            if in_degree[successor] == 0:
                queue.append(successor)
    if len(order) != len(reachable):
        raise ValueError("graph reachable from source contains a cycle; use the exact method")

    for node in order:
        base = phi.get(node, 0.0)
        if base == 0.0:
            continue
        merged: dict[NodeId, float] = {}
        for edge in graph.out_edges(node, SHAREHOLDING):
            if edge.target in reachable:
                merged[edge.target] = merged.get(edge.target, 0.0) + edge.get("w", 0.0)
        for target, share in merged.items():
            phi[target] = phi.get(target, 0.0) + base * share
    phi.pop(source, None)
    return phi


def all_accumulated_ownership(
    graph: CompanyGraph,
    sources: Iterable[NodeId] | None = None,
    max_depth: int | None = None,
) -> dict[NodeId, dict[NodeId, float]]:
    """``Phi`` from every source; picks the DAG fast path when possible."""
    if sources is None:
        sources = list(graph.node_ids())
    use_dag = max_depth is None and is_acyclic(graph)
    result: dict[NodeId, dict[NodeId, float]] = {}
    for source in sources:
        if use_dag:
            result[source] = accumulated_ownership_dag(graph, source)
        else:
            result[source] = accumulated_ownership_from(graph, source, max_depth=max_depth)
    return result


@dataclass(frozen=True)
class CloseLink:
    """A detected close link with its justification."""

    x: NodeId
    y: NodeId
    reason: str          # "direct", "reverse" or "common-owner"
    witness: NodeId | None = None  # the common third party z for "common-owner"
    phi: float = 0.0


def links_from_phi(
    phi: dict[NodeId, dict[NodeId, float]],
    company_ids: set[NodeId],
    threshold: float = CLOSE_LINK_THRESHOLD,
) -> list[CloseLink]:
    """Derive the close-link relation from precomputed ``Phi`` rows.

    This is the pure derivation step of Definition 2.6, split out so the
    incremental snapshot maintainer can re-derive links from *patched*
    ``Phi`` rows and obtain bit-identical results to a cold
    :func:`close_links` run over the same rows.
    """
    links: list[CloseLink] = []

    # conditions (i) and (ii): Phi(x, y) >= t in either direction
    for source, targets in phi.items():
        if source not in company_ids:
            continue
        for target, value in targets.items():
            if target in company_ids and target != source and value >= threshold:
                links.append(CloseLink(source, target, "direct", phi=value))
                links.append(CloseLink(target, source, "reverse", phi=value))

    # condition (iii): common third party z with Phi(z, x) and Phi(z, y) >= t
    for witness, targets in phi.items():
        significant = [
            (company, value)
            for company, value in targets.items()
            if company in company_ids and value >= threshold and company != witness
        ]
        for i, (x, phi_x) in enumerate(significant):
            for y, phi_y in significant[i + 1:]:
                links.append(
                    CloseLink(x, y, "common-owner", witness=witness, phi=min(phi_x, phi_y))
                )
                links.append(
                    CloseLink(y, x, "common-owner", witness=witness, phi=min(phi_x, phi_y))
                )
    return links


def close_links(
    graph: CompanyGraph,
    threshold: float = CLOSE_LINK_THRESHOLD,
    max_depth: int | None = None,
) -> list[CloseLink]:
    """All close-link pairs of *companies* per Definition 2.6.

    Returns one :class:`CloseLink` per ordered pair and justification
    (a pair may be justified several ways).  Persons participate only as
    common third parties (condition iii), matching the regulation.
    """
    phi = all_accumulated_ownership(graph, max_depth=max_depth)
    company_ids = {node.id for node in graph.companies()}
    return links_from_phi(phi, company_ids, threshold)


def close_link_pairs(
    graph: CompanyGraph,
    threshold: float = CLOSE_LINK_THRESHOLD,
    max_depth: int | None = None,
) -> set[tuple[NodeId, NodeId]]:
    """The symmetric close-link relation as a set of ordered pairs."""
    return {(link.x, link.y) for link in close_links(graph, threshold, max_depth)}


def closely_linked(
    graph: CompanyGraph,
    x: NodeId,
    y: NodeId,
    threshold: float = CLOSE_LINK_THRESHOLD,
    max_depth: int | None = None,
) -> bool:
    """Are companies ``x`` and ``y`` closely linked? (Definition 2.6)."""
    return (x, y) in close_link_pairs(graph, threshold, max_depth)
