"""Integrated ownership via sparse linear algebra.

Definition 2.5's accumulated ownership sums simple paths and is exact
but worst-case exponential.  Corporate-network economics (the literature
the paper cites for ownership studies) more often uses *integrated
ownership*: the walk-sum

    Y = W + W·Y      =>      Y = (I - W)^-1 · W

where ``W`` is the direct-ownership matrix.  Integrated and accumulated
ownership coincide on acyclic graphs (every walk is a simple path); on
cyclic graphs the geometric series converges whenever no company is
fully self-owned through cycles, counting circular ownership the way a
dividend flow would — including a company's indirect stake in itself
(the buy-back effect).

``W`` comes straight from the graph's columnar frame
(:class:`~repro.graph.columnar.GraphFrame`): the shareholding COO
buffers are built once per graph version, and the point solves share one
``splu`` factorisation of ``I - W^T`` instead of running a fresh
``spsolve`` per source — bit-identical results (same SuperLU code path),
O(n·nnz) once instead of per solve.  The node order is the frame's
intern order: ``str(id)``-sorted like the historical implementation, but
with a deterministic type/repr tiebreak for ids that stringify
identically (``1`` vs ``"1"``), which the old ``sorted(key=str)`` left
ambiguous.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import identity, lil_matrix
from scipy.sparse.linalg import spsolve

from ..graph.columnar import GraphFrame
from ..graph.company_graph import CompanyGraph
from ..graph.property_graph import NodeId


def ownership_matrix(
    graph: CompanyGraph,
) -> tuple[list[NodeId], "lil_matrix"]:
    """Direct-ownership matrix W with W[i, j] = share of node j held by node i.

    Node order is the frame's deterministic intern order; the matrix is
    materialised from the frame's cached COO buffers.
    """
    frame = GraphFrame.of(graph)
    return list(frame.nodes), frame.ownership_w().tolil()


def integrated_ownership_matrix(
    graph: CompanyGraph,
    damping: float = 1.0,
) -> tuple[list[NodeId], np.ndarray]:
    """The full integrated-ownership matrix ``Y = (I - W)^-1 W``.

    ``damping`` < 1 shrinks W before inversion; useful when a graph has
    (pathological) fully circular ownership making ``I - W`` singular.
    Returns (node order, dense Y) — dense because Y is generally dense;
    intended for graphs up to a few thousand nodes.
    """
    frame = GraphFrame.of(graph)
    nodes = list(frame.nodes)
    if not nodes:
        return nodes, np.zeros((0, 0))
    w = frame.ownership_w()
    if damping != 1.0:
        w = (w * damping).tocsc()
    system = (identity(len(nodes), format="csc") - w)
    solution = spsolve(system, w.toarray())
    result = np.asarray(solution)
    if result.ndim == 1:  # single-node graphs come back as a vector
        result = result.reshape(len(nodes), len(nodes))
    return nodes, result


def integrated_ownership(
    graph: CompanyGraph,
    source: NodeId,
    target: NodeId,
    damping: float = 1.0,
) -> float:
    """Integrated ownership of ``source`` over ``target`` (walk-sum)."""
    nodes, matrix = integrated_ownership_matrix(graph, damping)
    index = {node: i for i, node in enumerate(nodes)}
    if source not in index or target not in index:
        return 0.0
    return float(matrix[index[source], index[target]])


def integrated_ownership_from(
    graph: CompanyGraph,
    source: NodeId,
    damping: float = 1.0,
) -> dict[NodeId, float]:
    """Integrated ownership of ``source`` over every node (one triangular solve).

    Solves ``y = W^T y + W^T e_source`` — the column of Y restricted to
    the source row — against the frame's cached ``splu`` factorisation,
    so a sweep over many sources (UBO indexing, close-link screening)
    factorises ``I - W^T`` exactly once per graph version.
    """
    frame = GraphFrame.of(graph)
    index = frame.index
    if source not in index:
        return {}
    _, transpose, solver = frame.ownership_system(damping)
    unit = np.zeros(len(frame.nodes))
    unit[index[source]] = 1.0
    rhs = transpose @ unit
    solution = solver(rhs)
    return {
        node: float(solution[i])
        for node, i in index.items()
        if node != source and abs(solution[i]) > 1e-12
    }
