"""Integrated ownership via sparse linear algebra.

Definition 2.5's accumulated ownership sums simple paths and is exact
but worst-case exponential.  Corporate-network economics (the literature
the paper cites for ownership studies) more often uses *integrated
ownership*: the walk-sum

    Y = W + W·Y      =>      Y = (I - W)^-1 · W

where ``W`` is the direct-ownership matrix.  Integrated and accumulated
ownership coincide on acyclic graphs (every walk is a simple path); on
cyclic graphs the geometric series converges whenever no company is
fully self-owned through cycles, counting circular ownership the way a
dividend flow would — including a company's indirect stake in itself
(the buy-back effect).

``W`` comes straight from the graph's columnar frame
(:class:`~repro.graph.columnar.GraphFrame`): the shareholding COO
buffers are built once per graph version, and the point solves share one
``splu`` factorisation of ``I - W^T`` instead of running a fresh
``spsolve`` per source — bit-identical results (same SuperLU code path),
O(n·nnz) once instead of per solve.  The node order is the frame's
intern order: ``str(id)``-sorted like the historical implementation, but
with a deterministic type/repr tiebreak for ids that stringify
identically (``1`` vs ``"1"``), which the old ``sorted(key=str)`` left
ambiguous.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import identity, lil_matrix
from scipy.sparse.linalg import spsolve

from ..graph.columnar import GraphFrame
from ..graph.company_graph import CompanyGraph
from ..graph.property_graph import NodeId


#: Largest shareholding-edit batch handled by a low-rank solver update;
#: bigger deltas refactorise (the correction term grows as O(n * k)).
DEFAULT_MAX_UPDATE_RANK = 32
#: Conditioning guard on the k x k capacitance matrix of the Woodbury
#: identity — an ill-conditioned capacitance would amplify the update's
#: rounding error far beyond a fresh factorisation's.
DEFAULT_CAPACITANCE_COND_LIMIT = 1e8
#: Longest chain of stacked low-rank corrections before forcing a fresh
#: factorisation (each layer adds a solve + an O(n * k) correction).
DEFAULT_MAX_UPDATE_CHAIN = 8


def try_low_rank_update(
    old_frame: GraphFrame,
    new_frame: GraphFrame,
    damping: float = 1.0,
    *,
    max_rank: int = DEFAULT_MAX_UPDATE_RANK,
    cond_limit: float = DEFAULT_CAPACITANCE_COND_LIMIT,
    max_chain: int = DEFAULT_MAX_UPDATE_CHAIN,
) -> bool:
    """Update ``old_frame``'s cached ``splu(I - W^T)`` solver to ``new_frame``.

    When a mutation batch only edits a few shareholdings, the new system
    matrix differs from the factorised one by a rank-``k`` term
    (one rank-1 term per changed ``W^T`` cell).  The Sherman-Morrison-
    Woodbury identity then solves the *new* system with the *old*
    factorisation plus a ``k x k`` correction::

        (A + U V^T)^-1 b = A^-1 b - A^-1 U (I_k + V^T A^-1 U)^-1 V^T A^-1 b

    with ``A = I - W_old^T`` and ``U V^T = -(W_new^T - W_old^T)``.  On
    success the corrected solver is installed on ``new_frame`` (via
    :meth:`~repro.graph.columnar.GraphFrame.adopt_ownership_system`) and
    ``True`` is returned; on any fallback condition the frames are left
    untouched and ``False`` means "refactorise as usual":

    * the node sets differ (added/removed nodes change the dimension);
    * more than ``max_rank`` cells of ``W^T`` changed;
    * the old system was singular (its solver already fell back to
      per-call ``spsolve``) or produces non-finite intermediates;
    * the capacitance matrix is ill-conditioned (``cond > cond_limit``);
    * ``max_chain`` corrections are already stacked on the old solver.

    The corrected solves are mathematically exact but follow a different
    floating-point path than a fresh factorisation, so results can
    differ in the last ulps — callers needing bit-identity with a cold
    factorisation must refactorise instead.
    """
    from scipy.linalg import lu_factor, lu_solve

    if new_frame.has_ownership_system(damping):
        return True  # already factorised — nothing to save
    if old_frame.nodes != new_frame.nodes:
        return False
    n = len(new_frame.nodes)
    if n == 0:
        return False
    w_old, t_old, solve_old = old_frame.ownership_system(damping)
    depth = getattr(solve_old, "low_rank_depth", 0)
    if depth >= max_chain:
        return False
    w_new = new_frame.ownership_w()
    if damping != 1.0:
        w_new = (w_new * damping).tocsc()
    t_new = w_new.T.tocsc()
    delta = (t_new - t_old).tocoo()
    delta.sum_duplicates()
    mask = delta.data != 0.0
    rows, cols, data = delta.row[mask], delta.col[mask], delta.data[mask]
    k = len(data)
    if k == 0:
        new_frame.adopt_ownership_system(damping, (w_new, t_new, solve_old))
        return True
    if k > max_rank:
        return False

    # A_new = A_old - (T_new - T_old) = A_old + U V^T with
    # U[:, t] = -data_t * e_{rows_t} and V[:, t] = e_{cols_t}
    u = np.zeros((n, k))
    u[rows, np.arange(k)] = -data
    z = solve_old(u)  # A_old^-1 U, one multi-rhs solve on the old factors
    if not np.isfinite(z).all():
        return False  # singular/overflowed old system — refactorise
    capacitance = np.eye(k) + z[cols, :]
    cond = np.linalg.cond(capacitance)
    if not np.isfinite(cond) or cond > cond_limit:
        return False
    factors = lu_factor(capacitance)

    def solver(rhs: np.ndarray) -> np.ndarray:
        base = solve_old(rhs)
        return base - z @ lu_solve(factors, base[cols])

    solver.low_rank_depth = depth + 1
    solver.low_rank_k = k
    new_frame.adopt_ownership_system(damping, (w_new, t_new, solver))
    return True


def ownership_matrix(
    graph: CompanyGraph,
) -> tuple[list[NodeId], "lil_matrix"]:
    """Direct-ownership matrix W with W[i, j] = share of node j held by node i.

    Node order is the frame's deterministic intern order; the matrix is
    materialised from the frame's cached COO buffers.
    """
    frame = GraphFrame.of(graph)
    return list(frame.nodes), frame.ownership_w().tolil()


def integrated_ownership_matrix(
    graph: CompanyGraph,
    damping: float = 1.0,
) -> tuple[list[NodeId], np.ndarray]:
    """The full integrated-ownership matrix ``Y = (I - W)^-1 W``.

    ``damping`` < 1 shrinks W before inversion; useful when a graph has
    (pathological) fully circular ownership making ``I - W`` singular.
    Returns (node order, dense Y) — dense because Y is generally dense;
    intended for graphs up to a few thousand nodes.
    """
    frame = GraphFrame.of(graph)
    nodes = list(frame.nodes)
    if not nodes:
        return nodes, np.zeros((0, 0))
    w = frame.ownership_w()
    if damping != 1.0:
        w = (w * damping).tocsc()
    system = (identity(len(nodes), format="csc") - w)
    solution = spsolve(system, w.toarray())
    result = np.asarray(solution)
    if result.ndim == 1:  # single-node graphs come back as a vector
        result = result.reshape(len(nodes), len(nodes))
    return nodes, result


def integrated_ownership(
    graph: CompanyGraph,
    source: NodeId,
    target: NodeId,
    damping: float = 1.0,
) -> float:
    """Integrated ownership of ``source`` over ``target`` (walk-sum)."""
    nodes, matrix = integrated_ownership_matrix(graph, damping)
    index = {node: i for i, node in enumerate(nodes)}
    if source not in index or target not in index:
        return 0.0
    return float(matrix[index[source], index[target]])


def integrated_ownership_from(
    graph: CompanyGraph,
    source: NodeId,
    damping: float = 1.0,
) -> dict[NodeId, float]:
    """Integrated ownership of ``source`` over every node (one triangular solve).

    Solves ``y = W^T y + W^T e_source`` — the column of Y restricted to
    the source row — against the frame's cached ``splu`` factorisation,
    so a sweep over many sources (UBO indexing, close-link screening)
    factorises ``I - W^T`` exactly once per graph version.
    """
    frame = GraphFrame.of(graph)
    index = frame.index
    if source not in index:
        return {}
    _, transpose, solver = frame.ownership_system(damping)
    unit = np.zeros(len(frame.nodes))
    unit[index[source]] = 1.0
    rhs = transpose @ unit
    solution = solver(rhs)
    return {
        node: float(solution[i])
        for node, i in index.items()
        if node != source and abs(solution[i]) > 1e-12
    }
