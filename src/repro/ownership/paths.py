"""Simple-path enumeration over shareholding edges.

Accumulated ownership (Definition 2.5) sums, over all *simple* paths from
x to y, the product of the edge shares along each path.  This module
provides the path enumerator those computations are built on, with depth
and path-count guards: the paper notes these problems "in the worst case
enumerate all the graph paths", so callers on adversarial graphs must be
able to bound the work.
"""

from __future__ import annotations

from typing import Iterator

from ..graph.company_graph import SHAREHOLDING, CompanyGraph
from ..graph.property_graph import NodeId


class PathBudgetExceeded(RuntimeError):
    """Raised when path enumeration exceeds the caller-provided budget."""


def simple_paths(
    graph: CompanyGraph,
    source: NodeId,
    target: NodeId,
    max_depth: int | None = None,
    max_paths: int | None = None,
) -> Iterator[list[NodeId]]:
    """Yield all simple paths source -> target along shareholding edges.

    A path is a list of node ids starting at ``source`` and ending at
    ``target`` with no repeated node.  ``max_depth`` bounds the number of
    edges per path; ``max_paths`` raises :class:`PathBudgetExceeded` when
    more paths would be produced.
    """
    if not graph.has_node(source) or not graph.has_node(target):
        return
    def distinct_successors(node: NodeId) -> Iterator[NodeId]:
        # parallel shareholding edges must yield one path, not several:
        # their fractions are summed by path_weight via CompanyGraph.share
        seen: set[NodeId] = set()
        for successor in graph.successors(node, SHAREHOLDING):
            if successor not in seen:
                seen.add(successor)
                yield successor

    produced = 0
    # iterative DFS with explicit stack of (node, successor-iterator)
    path: list[NodeId] = [source]
    on_path: set[NodeId] = {source}
    stack = [distinct_successors(source)]
    while stack:
        children = stack[-1]
        child = next(children, None)
        if child is None:
            stack.pop()
            on_path.discard(path.pop())
            continue
        if child in on_path:
            continue
        if child == target:
            produced += 1
            if max_paths is not None and produced > max_paths:
                raise PathBudgetExceeded(
                    f"more than {max_paths} simple paths from {source!r} to {target!r}"
                )
            yield path + [target]
            continue
        if max_depth is not None and len(path) >= max_depth:
            continue
        path.append(child)
        on_path.add(child)
        stack.append(distinct_successors(child))


def path_weight(graph: CompanyGraph, path: list[NodeId]) -> float:
    """Product of shareholding fractions along ``path`` (Definition 2.5, W).

    Parallel edges between consecutive nodes are summed before
    multiplying, consistent with :meth:`CompanyGraph.share`.
    """
    weight = 1.0
    for owner, company in zip(path, path[1:]):
        weight *= graph.share(owner, company)
    return weight
