"""Family control and family close links (Definitions 2.8 and 2.9).

Once personal connections are known, a family — a set of persons acting
as a single centre of interest — can be analysed like one shareholder:

* *family control* (Definition 2.8, Algorithm 8): family F controls y
  when a member controls y, or when the companies F controls plus the
  members' direct shares jointly exceed 50% of y;
* *family close link* (Definition 2.9, Algorithm 9): companies x and y
  are closely linked through F when two distinct members i, j of F have
  accumulated ownership >= t over x and y respectively.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..graph.company_graph import FAMILY, CompanyGraph
from ..graph.property_graph import NodeId
from .close_links import CLOSE_LINK_THRESHOLD, accumulated_ownership_from
from .control import CONTROL_THRESHOLD, group_controlled


def family_controlled(
    graph: CompanyGraph,
    members: Iterable[NodeId],
    threshold: float = CONTROL_THRESHOLD,
) -> set[NodeId]:
    """Companies controlled by family ``members`` acting together.

    This is exactly the coalition fixpoint of
    :func:`repro.ownership.control.group_controlled`: member shares and
    controlled-company shares pool into a single vote tally.
    """
    return group_controlled(graph, members, threshold)


def family_close_links(
    graph: CompanyGraph,
    members: Sequence[NodeId],
    threshold: float = CLOSE_LINK_THRESHOLD,
    max_depth: int | None = None,
) -> set[tuple[NodeId, NodeId]]:
    """Close links induced by a family (Definition 2.9 part ii).

    Companies x, y such that two *distinct* members i != j have
    ``Phi(i, x) >= t`` and ``Phi(j, y) >= t``.  Returned as a symmetric
    set of ordered pairs (x != y).
    """
    company_ids = {node.id for node in graph.companies()}
    significant: list[set[NodeId]] = []
    for member in members:
        phi = accumulated_ownership_from(graph, member, max_depth=max_depth)
        significant.append(
            {company for company, value in phi.items()
             if company in company_ids and value >= threshold}
        )
    links: set[tuple[NodeId, NodeId]] = set()
    for i in range(len(members)):
        for j in range(len(members)):
            if i == j:
                continue
            for x in significant[i]:
                for y in significant[j]:
                    if x != y:
                        links.add((x, y))
                        links.add((y, x))
    return links


def families_from_graph(graph: CompanyGraph) -> dict[NodeId, set[NodeId]]:
    """Extract family membership from ``family``-labelled edges.

    The paper models families as nodes with Family-typed edges from each
    member (Algorithm 8 joins ``Link(z, x, F)`` with
    ``EdgeType(z, Family)``).  We follow the same shape: an edge
    ``person -> family_node`` labelled :data:`FAMILY` declares membership.
    Returns family node id -> set of member person ids.
    """
    families: dict[NodeId, set[NodeId]] = {}
    for edge in graph.edges(FAMILY):
        families.setdefault(edge.target, set()).add(edge.source)
    return families


def all_family_control(
    graph: CompanyGraph,
    threshold: float = CONTROL_THRESHOLD,
) -> set[tuple[NodeId, NodeId]]:
    """(family, company) control pairs for every family declared in the graph."""
    pairs: set[tuple[NodeId, NodeId]] = set()
    for family, members in families_from_graph(graph).items():
        for company in family_controlled(graph, members, threshold):
            pairs.add((family, company))
    return pairs


def all_family_close_links(
    graph: CompanyGraph,
    threshold: float = CLOSE_LINK_THRESHOLD,
    max_depth: int | None = None,
) -> set[tuple[NodeId, NodeId]]:
    """Family-induced close links for every family declared in the graph."""
    links: set[tuple[NodeId, NodeId]] = set()
    for members in families_from_graph(graph).values():
        links |= family_close_links(graph, sorted(members, key=str), threshold, max_depth)
    return links
