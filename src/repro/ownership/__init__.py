"""Ownership analytics: company control, close links, family control.

These are the reference (procedural) implementations of the paper's
Definitions 2.3, 2.5, 2.6, 2.8 and 2.9.  The declarative Vadalog
programs in :mod:`repro.core.programs` are cross-validated against them.
"""

from .close_links import (
    CLOSE_LINK_THRESHOLD,
    CloseLink,
    accumulated_ownership,
    accumulated_ownership_dag,
    accumulated_ownership_from,
    all_accumulated_ownership,
    close_link_pairs,
    close_links,
    closely_linked,
    is_acyclic,
)
from .control import (
    CONTROL_THRESHOLD,
    control_chain,
    control_closure,
    controlled_by,
    controls,
    group_controlled,
)
from .family_control import (
    all_family_close_links,
    all_family_control,
    families_from_graph,
    family_close_links,
    family_controlled,
)
from .groups import (
    ControlGroup,
    connected_clients,
    control_groups,
    group_exposure,
    ultimate_controller,
)
from .matrix import (
    integrated_ownership,
    integrated_ownership_from,
    integrated_ownership_matrix,
    ownership_matrix,
)
from .paths import PathBudgetExceeded, path_weight, simple_paths
from .ubo import (
    UBO_THRESHOLD,
    BeneficialOwner,
    all_beneficial_owners,
    beneficial_owners,
    opaque_companies,
)

__all__ = [
    "CLOSE_LINK_THRESHOLD",
    "CONTROL_THRESHOLD",
    "CloseLink",
    "PathBudgetExceeded",
    "accumulated_ownership",
    "accumulated_ownership_dag",
    "accumulated_ownership_from",
    "all_accumulated_ownership",
    "all_family_close_links",
    "all_family_control",
    "close_link_pairs",
    "close_links",
    "closely_linked",
    "control_chain",
    "control_closure",
    "controlled_by",
    "controls",
    "families_from_graph",
    "family_close_links",
    "family_controlled",
    "group_controlled",
    "is_acyclic",
    "path_weight",
    "simple_paths",
    "integrated_ownership",
    "integrated_ownership_from",
    "integrated_ownership_matrix",
    "ownership_matrix",
    "UBO_THRESHOLD",
    "BeneficialOwner",
    "all_beneficial_owners",
    "beneficial_owners",
    "opaque_companies",
    "ControlGroup",
    "connected_clients",
    "control_groups",
    "group_exposure",
    "ultimate_controller",
]
