"""Control groups and groups of connected clients.

Two aggregations supervisors build on top of the control and close-link
relations (the paper's banking-supervision use cases):

* **control groups** — each company is assigned to its *ultimate
  controller*: the controller that nobody else controls.  The result is
  the group structure used for consolidated supervision;
* **groups of connected clients** — the EU large-exposure concept: sets
  of clients so interconnected (control relationships or economic
  dependence, here proxied by close links) that they constitute a single
  risk.  Computed as connected components of the union of the two
  relations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..graph.company_graph import CompanyGraph
from ..graph.property_graph import NodeId
from .close_links import CLOSE_LINK_THRESHOLD, close_link_pairs
from .control import CONTROL_THRESHOLD, control_closure


@dataclass
class ControlGroup:
    """One ultimate controller and everything it controls."""

    controller: NodeId
    members: set[NodeId] = field(default_factory=set)

    @property
    def size(self) -> int:
        return len(self.members) + 1


def ultimate_controller(
    graph: CompanyGraph,
    company: NodeId,
    threshold: float = CONTROL_THRESHOLD,
    pairs: set[tuple[NodeId, NodeId]] | None = None,
) -> NodeId | None:
    """The controller of ``company`` that is itself uncontrolled.

    Follows controllers upward; returns None when nobody controls the
    company.  On (pathological) mutual-control cycles the smallest node
    id of the cycle is chosen, deterministically.
    """
    if pairs is None:
        pairs = control_closure(graph, threshold=threshold)
    controllers_of: dict[NodeId, set[NodeId]] = {}
    for controller, controlled in pairs:
        controllers_of.setdefault(controlled, set()).add(controller)

    current = company
    visited = {company}
    while True:
        uppers = controllers_of.get(current)
        if not uppers:
            return None if current == company else current
        # prefer an uncontrolled controller; break ties deterministically
        uncontrolled = sorted(
            (u for u in uppers if not controllers_of.get(u)), key=str
        )
        if uncontrolled:
            return uncontrolled[0]
        fresh = sorted((u for u in uppers if u not in visited), key=str)
        if not fresh:
            # mutual-control cycle: pick the canonical member
            return sorted(visited, key=str)[0]
        current = fresh[0]
        visited.add(current)


def control_groups(
    graph: CompanyGraph,
    threshold: float = CONTROL_THRESHOLD,
) -> list[ControlGroup]:
    """Partition controlled companies by ultimate controller.

    Companies nobody controls head their own (possibly singleton) group
    only if they control something; fully independent companies are not
    reported.
    """
    pairs = control_closure(graph, threshold=threshold)
    groups: dict[NodeId, ControlGroup] = {}
    for company_node in graph.companies():
        company = company_node.id
        top = ultimate_controller(graph, company, threshold, pairs)
        if top is None:
            continue
        group = groups.get(top)
        if group is None:
            group = groups[top] = ControlGroup(top)
        group.members.add(company)
    return sorted(groups.values(), key=lambda g: (-g.size, str(g.controller)))


def connected_clients(
    graph: CompanyGraph,
    control_threshold: float = CONTROL_THRESHOLD,
    close_link_threshold: float = CLOSE_LINK_THRESHOLD,
    max_depth: int | None = 12,
) -> list[set[NodeId]]:
    """Groups of connected clients: components of control ∪ close links.

    Returns the groups with at least two members, largest first.
    """
    parent: dict[NodeId, NodeId] = {}

    def find(x: NodeId) -> NodeId:
        parent.setdefault(x, x)
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(a: NodeId, b: NodeId) -> None:
        parent[find(a)] = find(b)

    for x, y in control_closure(graph, threshold=control_threshold):
        union(x, y)
    for x, y in close_link_pairs(graph, close_link_threshold, max_depth=max_depth):
        union(x, y)

    components: dict[NodeId, set[NodeId]] = {}
    for node in parent:
        components.setdefault(find(node), set()).add(node)
    groups = [members for members in components.values() if len(members) >= 2]
    return sorted(groups, key=lambda g: (-len(g), str(sorted(g, key=str)[0])))


def group_exposure(
    graph: CompanyGraph,
    exposures: dict[NodeId, float],
    **kwargs,
) -> list[tuple[set[NodeId], float]]:
    """Aggregate per-client exposures over groups of connected clients.

    The large-exposure rule caps a bank's exposure to a *group*, not to a
    single client; this helper sums the given per-client exposures over
    each detected group (clients outside any group keep their own figure
    implicitly).  Returns (group, total) pairs, largest total first.
    """
    totals = []
    for group in connected_clients(graph, **kwargs):
        total = sum(exposures.get(member, 0.0) for member in group)
        if total > 0:
            totals.append((group, total))
    return sorted(totals, key=lambda item: -item[1])
