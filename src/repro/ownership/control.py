"""Company control (Definition 2.3) — reference fixpoint implementation.

A company (or person) ``x`` controls company ``y`` when:

(i)  ``x`` directly owns more than 50% of ``y``; or
(ii) ``x`` controls a set of companies that jointly — possibly together
     with ``x`` itself — own more than 50% of ``y``.

This procedural implementation is the ground truth against which the
declarative Vadalog program (Algorithm 5) is cross-checked in the tests.
It runs one worklist fixpoint per source node: when a node enters the
controlled set, its outgoing shares are added to the accumulated vote
tally of each target; targets crossing the 50% threshold join the set.
"""

from __future__ import annotations

from typing import Iterable

from ..graph.company_graph import SHAREHOLDING, CompanyGraph
from ..graph.property_graph import NodeId

#: Vote-majority threshold of Definition 2.3 (strictly more than half).
CONTROL_THRESHOLD = 0.5


def controlled_by(
    graph: CompanyGraph,
    source: NodeId,
    threshold: float = CONTROL_THRESHOLD,
) -> set[NodeId]:
    """All companies controlled by ``source`` (source itself excluded)."""
    return group_controlled(graph, [source], threshold)


def group_controlled(
    graph: CompanyGraph,
    members: Iterable[NodeId],
    threshold: float = CONTROL_THRESHOLD,
) -> set[NodeId]:
    """Companies jointly controlled by a coalition of ``members``.

    The coalition is treated as a single centre of interest: the direct
    shares of every member and of every company the coalition controls
    are pooled.  With a single member this is exactly Definition 2.3;
    with a family's members it is Definition 2.8 (family control).
    """
    seeds = [m for m in members if graph.has_node(m)]
    controlled: set[NodeId] = set(seeds)
    votes: dict[NodeId, float] = {}
    worklist: list[NodeId] = list(controlled)
    while worklist:
        holder = worklist.pop()
        for edge in graph.out_edges(holder, SHAREHOLDING):
            target = edge.target
            if target in controlled:
                continue
            votes[target] = votes.get(target, 0.0) + edge.get("w", 0.0)
            if votes[target] > threshold:
                controlled.add(target)
                worklist.append(target)
    return controlled - set(seeds)


def controls(
    graph: CompanyGraph,
    source: NodeId,
    target: NodeId,
    threshold: float = CONTROL_THRESHOLD,
) -> bool:
    """Does ``source`` control ``target``? (Definition 2.3)."""
    return target in controlled_by(graph, source, threshold)


def control_closure(
    graph: CompanyGraph,
    sources: Iterable[NodeId] | None = None,
    threshold: float = CONTROL_THRESHOLD,
) -> set[tuple[NodeId, NodeId]]:
    """All (x, y) control pairs, for every source (or the given ones).

    Complexity O(|sources| * |E|) — each source runs an independent
    worklist fixpoint.
    """
    if sources is None:
        sources = list(graph.node_ids())
    pairs: set[tuple[NodeId, NodeId]] = set()
    for source in sources:
        for target in controlled_by(graph, source, threshold):
            pairs.add((source, target))
    return pairs


def control_chain(
    graph: CompanyGraph,
    source: NodeId,
    target: NodeId,
    threshold: float = CONTROL_THRESHOLD,
) -> list[tuple[NodeId, float]] | None:
    """An explanation of why ``source`` controls ``target``.

    Returns the accumulation order: the list of (company, accumulated
    vote share of ``target``'s stock at the moment the company was
    absorbed into the controlled set), or None when there is no control.
    The last entry is ``target`` with its final tallied share.
    """
    if not graph.has_node(source):
        return None
    controlled: set[NodeId] = {source}
    votes: dict[NodeId, float] = {}
    order: list[NodeId] = [source]
    worklist: list[NodeId] = [source]
    absorbed_at: dict[NodeId, float] = {}
    while worklist:
        holder = worklist.pop()
        for edge in graph.out_edges(holder, SHAREHOLDING):
            company = edge.target
            if company in controlled:
                continue
            votes[company] = votes.get(company, 0.0) + edge.get("w", 0.0)
            if votes[company] > threshold:
                controlled.add(company)
                absorbed_at[company] = votes[company]
                order.append(company)
                worklist.append(company)
    if target not in controlled or target == source:
        return None
    chain = []
    for company in order[1:]:
        chain.append((company, absorbed_at[company]))
        if company == target:
            break
    return chain
