"""Property-graph substrate: the data model of Definitions 2.1 and 2.2."""

from .columnar import GraphFrame
from .company_graph import (
    COMPANY,
    FAMILY,
    PERSON,
    SHAREHOLDING,
    CompanyGraph,
    figure1_graph,
    figure2_graph,
)
from .io import (
    from_json,
    load_json,
    read_company_csv,
    save_json,
    to_json,
    write_company_csv,
)
from .metrics import (
    GraphProfile,
    average_clustering,
    clustering_coefficient,
    count_self_loops,
    degree_histogram,
    power_law_alpha,
    profile,
    strongly_connected_components,
    weakly_connected_components,
)
from .property_graph import Edge, GraphError, Node, PropertyGraph
from .relational import (
    COMPANY_SCHEMA,
    EdgeRelation,
    NodeRelation,
    RelationalSchema,
    company_graph_from_facts,
    roundtrip,
    to_facts,
)
from .store import GraphStore
from .temporal import ControlChange, OwnershipHistory, evolve
from .dot import save_dot, to_dot
from .validation import Finding, quality_report, validate

__all__ = [
    "COMPANY",
    "COMPANY_SCHEMA",
    "CompanyGraph",
    "Edge",
    "EdgeRelation",
    "FAMILY",
    "GraphError",
    "GraphFrame",
    "GraphProfile",
    "GraphStore",
    "ControlChange",
    "OwnershipHistory",
    "evolve",
    "Finding",
    "quality_report",
    "validate",
    "save_dot",
    "to_dot",
    "Node",
    "NodeRelation",
    "PERSON",
    "PropertyGraph",
    "RelationalSchema",
    "SHAREHOLDING",
    "average_clustering",
    "clustering_coefficient",
    "company_graph_from_facts",
    "count_self_loops",
    "degree_histogram",
    "figure1_graph",
    "figure2_graph",
    "from_json",
    "load_json",
    "power_law_alpha",
    "profile",
    "read_company_csv",
    "roundtrip",
    "save_json",
    "strongly_connected_components",
    "to_facts",
    "to_json",
    "weakly_connected_components",
    "write_company_csv",
]
