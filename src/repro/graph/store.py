"""An embedded property-graph store — the reproduction's stand-in for Neo4j.

The paper stores the extensional property graph in a Neo4j server and
lets enterprise applications reach it through a reasoning API (Section 5).
Our store keeps the same role with an embedded engine: labelled nodes and
edges, secondary property indexes created on demand, and a small pattern
query surface (`find_nodes`, `match_edges`, `expand`) sufficient for the
pipeline and the examples.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Iterator

from .property_graph import Edge, EdgeId, Node, NodeId, PropertyGraph

#: Distinct sentinel for "the property was not set at all" — ``None`` is a
#: legitimate property value and must keep its own index bucket.
_MISSING = object()


class GraphStore:
    """Wraps a :class:`PropertyGraph` with label and property indexes."""

    def __init__(self, graph: PropertyGraph | None = None):
        self.graph = graph if graph is not None else PropertyGraph()
        # label -> node ids
        self._label_index: dict[str | None, set[NodeId]] = defaultdict(set)
        # (label, property) -> value -> node ids
        self._property_indexes: dict[tuple[str | None, str], dict[Any, set[NodeId]]] = {}
        for node in self.graph.nodes():
            self._label_index[node.label].add(node.id)

    # ------------------------------------------------------------------
    # writes (kept in sync with the indexes)
    # ------------------------------------------------------------------

    def create_node(self, node_id: NodeId, label: str | None = None, **properties: Any) -> Node:
        node = self.graph.add_node(node_id, label, **properties)
        self._label_index[label].add(node_id)
        for (index_label, prop), index in self._property_indexes.items():
            if index_label in (None, label) and prop in properties:
                index.setdefault(properties[prop], set()).add(node_id)
        return node

    def create_edge(
        self, source: NodeId, target: NodeId, label: str | None = None, **properties: Any
    ) -> Edge:
        return self.graph.add_edge(source, target, label, **properties)

    def set_property(self, node_id: NodeId, name: str, value: Any) -> None:
        node = self.graph.node(node_id)
        old = node.properties.get(name, _MISSING)
        # route through the graph so its generation counter (and thus any
        # cached GraphFrame) sees the write
        self.graph.set_property(node_id, name, value)
        for (index_label, prop), index in self._property_indexes.items():
            if prop != name or index_label not in (None, node.label):
                continue
            if old is not _MISSING and old in index:
                index[old].discard(node_id)
            index.setdefault(value, set()).add(node_id)

    def remove_edge(self, edge_id: EdgeId) -> Edge:
        """Remove and return an edge; raises :class:`GraphError` if absent.

        Edges do not participate in the node property indexes, so the
        adjacency bookkeeping in :meth:`PropertyGraph.remove_edge` is the
        whole story — this exists so the write surface is symmetric
        (``create_edge`` / ``remove_edge``) for the mutation delta path.
        """
        return self.graph.remove_edge(edge_id)

    def delete_node(self, node_id: NodeId) -> None:
        node = self.graph.remove_node(node_id)
        self._label_index[node.label].discard(node_id)
        for (index_label, prop), index in self._property_indexes.items():
            if index_label in (None, node.label) and prop in node.properties:
                index.get(node.properties[prop], set()).discard(node_id)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def ensure_index(self, prop: str, label: str | None = None) -> None:
        """Build (idempotently) a property index, optionally scoped to a label."""
        key = (label, prop)
        if key in self._property_indexes:
            return
        index: dict[Any, set[NodeId]] = {}
        candidates = (
            self._label_index.get(label, set()) if label is not None else self.graph.node_ids()
        )
        for node_id in candidates:
            node = self.graph.node(node_id)
            if prop in node.properties:
                index.setdefault(node.properties[prop], set()).add(node_id)
        self._property_indexes[key] = index

    def drop_index(self, prop: str, label: str | None = None) -> bool:
        """Drop a property index; returns whether one existed.

        ``find_nodes`` falls back to scanning, and a later
        :meth:`ensure_index` rebuilds from the live graph — the
        drop-then-reindex cycle is how stale index suspicion is resolved.
        """
        return self._property_indexes.pop((label, prop), None) is not None

    def find_nodes(
        self, label: str | None = None, **criteria: Any
    ) -> Iterator[Node]:
        """Nodes matching a label and exact property equalities.

        Uses a property index when one criterion is indexed; otherwise
        scans the label partition.  A criterion value of ``None`` matches
        only properties explicitly set to ``None``, never missing ones —
        the same semantics on the indexed and the scanning path.
        """
        candidate_ids: set[NodeId] | None = None
        for prop, value in criteria.items():
            index = self._property_indexes.get((label, prop)) or self._property_indexes.get(
                (None, prop)
            )
            if index is not None:
                hits = index.get(value, set())
                candidate_ids = hits if candidate_ids is None else candidate_ids & hits
        if candidate_ids is None:
            if label is not None:
                candidate_ids = self._label_index.get(label, set())
            else:
                candidate_ids = set(self.graph.node_ids())
        for node_id in candidate_ids:
            if not self.graph.has_node(node_id):
                continue
            node = self.graph.node(node_id)
            if label is not None and node.label != label:
                continue
            if all(
                p in node.properties and node.properties[p] == v
                for p, v in criteria.items()
            ):
                yield node

    def match_edges(
        self,
        label: str | None = None,
        source: NodeId | None = None,
        target: NodeId | None = None,
        **criteria: Any,
    ) -> Iterator[Edge]:
        """Edges matching a label, endpoints and property equalities."""
        if source is not None:
            edges: Iterator[Edge] = self.graph.out_edges(source, label)
        elif target is not None:
            edges = self.graph.in_edges(target, label)
        else:
            edges = self.graph.edges(label)
        for edge in edges:
            if source is not None and edge.source != source:
                continue
            if target is not None and edge.target != target:
                continue
            if all(edge.properties.get(p) == v for p, v in criteria.items()):
                yield edge

    def expand(
        self, node_id: NodeId, label: str | None = None, depth: int = 1
    ) -> set[NodeId]:
        """Nodes reachable from ``node_id`` within ``depth`` hops (out-edges)."""
        frontier = {node_id}
        visited = {node_id}
        for _ in range(depth):
            next_frontier: set[NodeId] = set()
            for current in frontier:
                for successor in self.graph.successors(current, label):
                    if successor not in visited:
                        visited.add(successor)
                        next_frontier.add(successor)
            frontier = next_frontier
            if not frontier:
                break
        visited.discard(node_id)
        return visited

    def node_count(self, label: str | None = None) -> int:
        if label is None:
            return self.graph.node_count
        return len(self._label_index.get(label, ()))
