"""Relational representation of property graphs (Section 3 of the paper).

Labels operate at schema level and map to predicate names; identifiers and
properties are instance-level and become positional terms of facts.  A
:class:`RelationalSchema` fixes, per label, the predicate name and the
total ordering of property names (the paper's "total ordering of property
names, so we can map them into positional atom terms").

Node relation layout:  ``pred(id, prop_1, ..., prop_m)``.
Edge relation layout:  ``pred(source_id, target_id, prop_1, ..., prop_m)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datalog.columns import NUMPY_AVAILABLE
from ..datalog.database import Database
from .columnar import GraphFrame
from .company_graph import COMPANY, PERSON, SHAREHOLDING, CompanyGraph
from .property_graph import PropertyGraph


@dataclass(frozen=True)
class NodeRelation:
    """How one node label maps to a relation."""

    label: str
    predicate: str
    properties: tuple[str, ...] = ()


@dataclass(frozen=True)
class EdgeRelation:
    """How one edge label maps to a relation.

    ``sum_property``: relational set semantics collapses identical rows,
    so two parallel edges with equal properties would silently become
    one.  Naming a numeric property here makes the export *merge*
    parallel edges between the same endpoints (equal on every other
    property) by summing it — for shareholdings this is exactly the
    total-fraction semantics of :meth:`CompanyGraph.share`.
    """

    label: str
    predicate: str
    properties: tuple[str, ...] = ()
    sum_property: str | None = None


@dataclass(frozen=True)
class RelationalSchema:
    """A full PG <-> relational mapping specification."""

    node_relations: tuple[NodeRelation, ...]
    edge_relations: tuple[EdgeRelation, ...]

    def node_relation(self, label: str) -> NodeRelation | None:
        for relation in self.node_relations:
            if relation.label == label:
                return relation
        return None

    def edge_relation(self, label: str) -> EdgeRelation | None:
        for relation in self.edge_relations:
            if relation.label == label:
                return relation
        return None


#: The company-graph schema used throughout the paper: Company, Person, Own.
COMPANY_SCHEMA = RelationalSchema(
    node_relations=(
        NodeRelation(COMPANY, "company", ("name", "address", "incorporation_date", "legal_form")),
        NodeRelation(
            PERSON,
            "person",
            ("name", "surname", "birth_date", "birth_place", "sex", "address", "father_name"),
        ),
    ),
    edge_relations=(
        EdgeRelation(SHAREHOLDING, "own", ("w", "right"), sum_property="w"),
    ),
)


def to_facts(
    graph: PropertyGraph,
    schema: RelationalSchema = COMPANY_SCHEMA,
    prime_columns: bool = True,
) -> Database:
    """Export ``graph`` to its relational representation.

    Elements whose label is not covered by the schema are skipped (they
    are outside the mapped sub-signature). Missing properties map to None.

    Facts are emitted from the graph's columnar frame — label partitions
    and per-property columns cached on the
    :class:`~repro.graph.columnar.GraphFrame` — instead of per-object
    iteration, so repeated exports of the same graph version (pipeline
    rounds, KG rebuilds) share the column buffers.  Fact content and
    per-predicate ordering are identical to the historical per-object
    walk: nodes and edges in insertion order, parallel shareholdings
    summed left to right.

    ``prime_columns`` additionally builds the database's columnar code
    blocks (:mod:`repro.datalog.columns`) for every exported predicate in
    one pass, while the fresh row tuples are still cache-hot — the
    vectorized engine backend then starts from synced blocks instead of
    interning whole relations in the middle of its first join.  A no-op
    without numpy.
    """
    frame = GraphFrame.of(graph)
    database = Database()
    nodes = frame.nodes
    seen_node_labels: set[str] = set()
    for relation in schema.node_relations:
        if relation.label in seen_node_labels:
            continue  # first relation per label wins, as in the object walk
        seen_node_labels.add(relation.label)
        codes = frame.label_members(relation.label)
        columns = [frame.node_property_column(p) for p in relation.properties]
        for code in codes.tolist():
            values = (nodes[code],) + tuple(column[code] for column in columns)
            database.add(relation.predicate, values)
    merged: dict[tuple, float] = {}
    merged_template: dict[tuple, tuple] = {}
    src, dst = frame.edge_src, frame.edge_dst
    seen_edge_labels: set[str] = set()
    for relation in schema.edge_relations:
        if relation.label in seen_edge_labels:
            continue
        seen_edge_labels.add(relation.label)
        positions = frame.edge_positions(relation.label)
        columns = [frame.edge_property_column(p) for p in relation.properties]
        sum_index = (
            None if relation.sum_property is None
            else 2 + relation.properties.index(relation.sum_property)
        )
        for pos in positions.tolist():
            values = (nodes[src[pos]], nodes[dst[pos]]) + tuple(
                column[pos] for column in columns
            )
            if sum_index is None:
                database.add(relation.predicate, values)
                continue
            key = (relation.predicate,) + values[:sum_index] + values[sum_index + 1:]
            merged[key] = merged.get(key, 0.0) + (values[sum_index] or 0.0)
            merged_template[key] = (relation.predicate, values, sum_index)
    for key, total in merged.items():
        predicate, values, sum_index = merged_template[key]
        row = values[:sum_index] + (total,) + values[sum_index + 1:]
        database.add(predicate, row)
    if prime_columns and NUMPY_AVAILABLE:
        store = database.column_store()
        for predicate in database.predicates():
            store.preload(predicate)
    return database


def company_graph_from_facts(
    database: Database, schema: RelationalSchema = COMPANY_SCHEMA
) -> CompanyGraph:
    """Rebuild a :class:`CompanyGraph` from its relational representation.

    Inverse of :func:`to_facts` for the company schema; property values
    equal to None are dropped.
    """
    graph = CompanyGraph()
    for relation in schema.node_relations:
        for values in database.iter_facts(relation.predicate):
            node_id = values[0]
            properties = {
                name: value
                for name, value in zip(relation.properties, values[1:])
                if value is not None
            }
            if relation.label == COMPANY:
                graph.add_company(node_id, **properties)
            elif relation.label == PERSON:
                graph.add_person(node_id, **properties)
            else:
                graph.add_node(node_id, relation.label, **properties)
    for relation in schema.edge_relations:
        for values in database.iter_facts(relation.predicate):
            source, target = values[0], values[1]
            properties = {
                name: value
                for name, value in zip(relation.properties, values[2:])
                if value is not None
            }
            if relation.label == SHAREHOLDING:
                share = properties.pop("w", None)
                if share is None:
                    raise ValueError(
                        f"own fact {values!r} is missing the share amount 'w'"
                    )
                graph.add_shareholding(source, target, share, **properties)
            else:
                graph.add_edge(source, target, relation.label, **properties)
    return graph


def roundtrip(graph: CompanyGraph, schema: RelationalSchema = COMPANY_SCHEMA) -> CompanyGraph:
    """Export and re-import (used by tests to check the mapping is lossless
    over the schema-covered signature)."""
    return company_graph_from_facts(to_facts(graph, schema), schema)
