"""Yearly ownership history — the temporal shape of the paper's database.

The Italian company database covers 2005-2018 and the paper reports its
statistics "on average, for each year".  This module models that shape:
an :class:`OwnershipHistory` holds one :class:`CompanyGraph` snapshot per
year and answers longitudinal questions — how control changed between
years, which relationships are stable, how the yearly statistical profile
evolves.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterator

from ..ownership.control import CONTROL_THRESHOLD, control_closure
from .company_graph import CompanyGraph
from .metrics import GraphProfile, profile
from .property_graph import NodeId


@dataclass(frozen=True)
class ControlChange:
    """One change in the control relation between two snapshots."""

    controller: NodeId
    company: NodeId
    kind: str  # "gained" or "lost"


class OwnershipHistory:
    """An ordered collection of yearly company-graph snapshots."""

    def __init__(self, snapshots: dict[int, CompanyGraph] | None = None):
        self._snapshots: dict[int, CompanyGraph] = dict(snapshots or {})

    # ------------------------------------------------------------------
    # snapshot management
    # ------------------------------------------------------------------

    def add_snapshot(self, year: int, graph: CompanyGraph) -> None:
        self._snapshots[year] = graph

    def snapshot(self, year: int) -> CompanyGraph:
        try:
            return self._snapshots[year]
        except KeyError:
            raise KeyError(f"no snapshot for year {year}") from None

    def years(self) -> list[int]:
        return sorted(self._snapshots)

    def __len__(self) -> int:
        return len(self._snapshots)

    def __iter__(self) -> Iterator[tuple[int, CompanyGraph]]:
        for year in self.years():
            yield year, self._snapshots[year]

    # ------------------------------------------------------------------
    # longitudinal analytics
    # ------------------------------------------------------------------

    def control_changes(
        self,
        year_from: int,
        year_to: int,
        threshold: float = CONTROL_THRESHOLD,
    ) -> list[ControlChange]:
        """Control pairs gained or lost between two snapshot years."""
        before = control_closure(self.snapshot(year_from), threshold=threshold)
        after = control_closure(self.snapshot(year_to), threshold=threshold)
        changes = [
            ControlChange(x, y, "gained") for x, y in sorted(after - before, key=str)
        ]
        changes.extend(
            ControlChange(x, y, "lost") for x, y in sorted(before - after, key=str)
        )
        return changes

    def stable_control_pairs(
        self, threshold: float = CONTROL_THRESHOLD
    ) -> set[tuple[NodeId, NodeId]]:
        """Control pairs that hold in *every* snapshot."""
        years = self.years()
        if not years:
            return set()
        stable = control_closure(self.snapshot(years[0]), threshold=threshold)
        for year in years[1:]:
            stable &= control_closure(self.snapshot(year), threshold=threshold)
        return stable

    def profile_series(self) -> dict[int, GraphProfile]:
        """The Section 2 statistical profile, per year."""
        return {year: profile(graph) for year, graph in self}

    def node_tenure(self) -> dict[NodeId, tuple[int, int]]:
        """node -> (first year present, last year present)."""
        tenure: dict[NodeId, tuple[int, int]] = {}
        for year, graph in self:
            for node in graph.node_ids():
                first, _ = tenure.get(node, (year, year))
                tenure[node] = (first, year)
        return tenure

    def churn(self, year_from: int, year_to: int) -> dict[str, int]:
        """Node/edge arrivals and departures between two years.

        Edges are counted as a *multiset*: parallel shareholdings with
        identical ``(source, target, share)`` keys are real, distinct
        holdings (e.g. two share packages of the same size), so a year
        that drops one of two equal parallel edges is one removal — a
        plain set difference would report zero.
        """
        before = self.snapshot(year_from)
        after = self.snapshot(year_to)
        nodes_before = set(before.node_ids())
        nodes_after = set(after.node_ids())
        edges_before = Counter(
            (e.source, e.target, round(e.get("w", 0.0), 9))
            for e in before.shareholdings()
        )
        edges_after = Counter(
            (e.source, e.target, round(e.get("w", 0.0), 9))
            for e in after.shareholdings()
        )
        return {
            "nodes_added": len(nodes_after - nodes_before),
            "nodes_removed": len(nodes_before - nodes_after),
            "edges_added": sum((edges_after - edges_before).values()),
            "edges_removed": sum((edges_before - edges_after).values()),
        }


def evolve(
    graph: CompanyGraph,
    years: list[int],
    seed: int = 0,
    transfer_rate: float = 0.05,
    incorporation_rate: float = 0.02,
    dissolution_rate: float = 0.01,
) -> OwnershipHistory:
    """Simulate yearly evolution of an ownership graph.

    Each year: a fraction of shareholdings transfer to a different owner
    (``transfer_rate``), new companies incorporate with shares taken by
    random existing nodes (``incorporation_rate`` of the company count),
    and a few companies dissolve (``dissolution_rate``).  Deterministic
    per seed; the first listed year holds the input graph unchanged.
    """
    import random

    rng = random.Random(seed)
    history = OwnershipHistory()
    current = graph.copy()
    history.add_snapshot(years[0], current)

    next_company_id = 0
    for year in years[1:]:
        current = current.copy()

        # share transfers: reassign the owner of some shareholdings
        holders = [n.id for n in current.persons()] + [n.id for n in current.companies()]
        for edge in list(current.shareholdings()):
            if rng.random() >= transfer_rate or not holders:
                continue
            new_owner = rng.choice(holders)
            if new_owner == edge.target or new_owner == edge.source:
                continue
            share = edge.get("w", 0.0)
            current.remove_edge(edge.id)
            current.add_shareholding(new_owner, edge.target, share)

        # incorporations
        companies = [n.id for n in current.companies()]
        births = max(0, int(len(companies) * incorporation_rate))
        for _ in range(births):
            company_id = f"NEW{year}_{next_company_id:05d}"
            next_company_id += 1
            current.add_company(company_id, name=company_id,
                                incorporation_date=f"{year}-01-01")
            if holders:
                owner = rng.choice(holders)
                current.add_shareholding(owner, company_id, 0.3 + 0.7 * rng.random())

        # dissolutions
        companies = [n.id for n in current.companies()]
        deaths = max(0, int(len(companies) * dissolution_rate))
        for company in rng.sample(companies, min(deaths, len(companies))):
            current.remove_node(company)

        history.add_snapshot(year, current)
    return history
