"""Graphviz DOT export, styled like the paper's figures.

Figure 1/2 of the paper draw companies and persons as black/blue nodes,
shareholdings as solid labelled edges, and the *derived* relationships
dashed and coloured: green for control, magenta for close links, red for
personal connections.  :func:`to_dot` renders any (augmented) company
graph in that visual language, so ``dot -Tsvg`` reproduces the paper's
pictures from live data.
"""

from __future__ import annotations

from .company_graph import COMPANY, FAMILY, PERSON, SHAREHOLDING
from .property_graph import PropertyGraph

#: Edge styling per label: (color, style).
EDGE_STYLES: dict[str | None, tuple[str, str]] = {
    SHAREHOLDING: ("black", "solid"),
    "control": ("forestgreen", "dashed"),
    "close_link": ("magenta", "dashed"),
    "partner_of": ("red", "dashed"),
    "sibling_of": ("red", "dotted"),
    "parent_of": ("red", "dashed"),
    FAMILY: ("red", "dotted"),
}

NODE_STYLES: dict[str | None, str] = {
    COMPANY: 'shape=box, color=black',
    PERSON: 'shape=ellipse, color=blue, fontcolor=blue',
    "F": 'shape=hexagon, color=red, fontcolor=red',
}


def _quote(value: object) -> str:
    text = str(value).replace("\\", "\\\\").replace('"', '\\"')
    return f'"{text}"'


def to_dot(
    graph: PropertyGraph,
    name: str = "company_graph",
    show_share_labels: bool = True,
    symmetric_once: bool = True,
) -> str:
    """Render ``graph`` as Graphviz DOT text.

    ``symmetric_once`` draws each symmetric derived relation (close
    links, partner/sibling) one time with both-way arrows instead of two
    directed edges.
    """
    lines = [f"digraph {_quote(name)} {{", "  rankdir=TB;", "  node [fontsize=11];"]

    for node in graph.nodes():
        style = NODE_STYLES.get(node.label, "shape=ellipse, color=gray40")
        label = node.properties.get("name", node.id)
        lines.append(f"  {_quote(node.id)} [{style}, label={_quote(label)}];")

    symmetric_labels = {"close_link", "partner_of", "sibling_of"}
    drawn_symmetric: set[tuple] = set()
    for edge in graph.edges():
        color, style = EDGE_STYLES.get(edge.label, ("gray40", "dashed"))
        attributes = [f"color={color}", f"style={style}"]
        if edge.label == SHAREHOLDING and show_share_labels:
            share = edge.get("w")
            if share is not None:
                attributes.append(f"label={_quote(f'{share:.0%}')}")
        if symmetric_once and edge.label in symmetric_labels:
            key = (edge.label, *sorted((str(edge.source), str(edge.target))))
            if key in drawn_symmetric:
                continue
            drawn_symmetric.add(key)
            attributes.append("dir=both")
        if edge.label and edge.label != SHAREHOLDING:
            attributes.append(f"fontcolor={color}")
            if not symmetric_once or edge.label not in symmetric_labels:
                attributes.append(f"label={_quote(edge.label)}")
        rendered = ", ".join(attributes)
        lines.append(
            f"  {_quote(edge.source)} -> {_quote(edge.target)} [{rendered}];"
        )
    lines.append("}")
    return "\n".join(lines)


def save_dot(graph: PropertyGraph, path, **kwargs) -> None:
    """Write :func:`to_dot` output to ``path``."""
    with open(path, "w") as handle:
        handle.write(to_dot(graph, **kwargs))
        handle.write("\n")
