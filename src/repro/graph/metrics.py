"""Graph statistics matching the profile published in Section 2 of the paper.

The paper characterises the Italian company graph with: node and edge
counts, number and average size of strongly/weakly connected components,
largest SCC/WCC, average and maximum in-/out-degree, average clustering
coefficient, number of self-loops, and a power-law degree distribution.
:func:`profile` computes the same indicators for any property graph.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .property_graph import NodeId, PropertyGraph


@dataclass
class GraphProfile:
    """The Section 2 statistical profile of a graph."""

    nodes: int
    edges: int
    scc_count: int
    scc_avg_size: float
    scc_max_size: int
    wcc_count: int
    wcc_avg_size: float
    wcc_max_size: int
    avg_in_degree: float
    avg_out_degree: float
    max_in_degree: int
    max_out_degree: int
    avg_clustering: float
    self_loops: int
    power_law_alpha: float | None

    def as_rows(self) -> list[tuple[str, str]]:
        """Render as (indicator, value) rows, the shape the paper reports."""
        fmt = lambda x: f"{x:,.4g}" if isinstance(x, float) else f"{x:,}"
        rows = [
            ("nodes", fmt(self.nodes)),
            ("edges", fmt(self.edges)),
            ("SCCs", fmt(self.scc_count)),
            ("avg SCC size", fmt(self.scc_avg_size)),
            ("largest SCC", fmt(self.scc_max_size)),
            ("WCCs", fmt(self.wcc_count)),
            ("avg WCC size", fmt(self.wcc_avg_size)),
            ("largest WCC", fmt(self.wcc_max_size)),
            ("avg in-degree", fmt(self.avg_in_degree)),
            ("avg out-degree", fmt(self.avg_out_degree)),
            ("max in-degree", fmt(self.max_in_degree)),
            ("max out-degree", fmt(self.max_out_degree)),
            ("avg clustering coefficient", fmt(self.avg_clustering)),
            ("self-loops", fmt(self.self_loops)),
        ]
        if self.power_law_alpha is not None:
            rows.append(("power-law alpha (MLE)", fmt(self.power_law_alpha)))
        return rows


def strongly_connected_components(graph: PropertyGraph) -> list[set[NodeId]]:
    """Tarjan's SCCs (iterative)."""
    index_counter = 0
    indexes: dict[NodeId, int] = {}
    lowlinks: dict[NodeId, int] = {}
    on_stack: set[NodeId] = set()
    stack: list[NodeId] = []
    components: list[set[NodeId]] = []

    for root in graph.node_ids():
        if root in indexes:
            continue
        work = [(root, iter(list(graph.successors(root))))]
        indexes[root] = lowlinks[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in indexes:
                    indexes[child] = lowlinks[child] = index_counter
                    index_counter += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(list(graph.successors(child)))))
                    advanced = True
                    break
                if child in on_stack:
                    lowlinks[node] = min(lowlinks[node], indexes[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
            if lowlinks[node] == indexes[node]:
                component: set[NodeId] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
    return components


def weakly_connected_components(graph: PropertyGraph) -> list[set[NodeId]]:
    """WCCs via union-find over the undirected projection."""
    parent: dict[NodeId, NodeId] = {n: n for n in graph.node_ids()}

    def find(x: NodeId) -> NodeId:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(a: NodeId, b: NodeId) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    for edge in graph.edges():
        union(edge.source, edge.target)

    groups: dict[NodeId, set[NodeId]] = {}
    for node in graph.node_ids():
        groups.setdefault(find(node), set()).add(node)
    return list(groups.values())


def clustering_coefficient(graph: PropertyGraph, node_id: NodeId) -> float:
    """Local clustering coefficient on the undirected projection."""
    neighbors = [n for n in graph.neighbors(node_id)]
    k = len(neighbors)
    if k < 2:
        return 0.0
    neighbor_set = set(neighbors)
    links = 0
    for neighbor in neighbors:
        for other in graph.neighbors(neighbor):
            if other in neighbor_set:
                links += 1
    # each undirected neighbor pair counted twice (once per endpoint)
    return links / (k * (k - 1))


def average_clustering(graph: PropertyGraph, sample: int | None = None, seed: int = 7) -> float:
    """Average local clustering coefficient, optionally over a random sample."""
    node_ids = list(graph.node_ids())
    if not node_ids:
        return 0.0
    if sample is not None and sample < len(node_ids):
        import random

        node_ids = random.Random(seed).sample(node_ids, sample)
    total = sum(clustering_coefficient(graph, n) for n in node_ids)
    return total / len(node_ids)


def count_self_loops(graph: PropertyGraph) -> int:
    return sum(1 for edge in graph.edges() if edge.source == edge.target)


def power_law_alpha(graph: PropertyGraph, k_min: int = 1) -> float | None:
    """MLE exponent of the (total) degree distribution: alpha = 1 + n / sum(ln(k / (k_min - 0.5))).

    Returns None when fewer than 2 nodes reach ``k_min``.
    """
    degrees = [graph.degree(n) for n in graph.node_ids()]
    tail = [k for k in degrees if k >= k_min]
    if len(tail) < 2:
        return None
    denominator = sum(math.log(k / (k_min - 0.5)) for k in tail)
    if denominator <= 0:
        return None
    return 1.0 + len(tail) / denominator


def degree_histogram(graph: PropertyGraph) -> dict[int, int]:
    """Degree -> node count, the raw data behind a log-log degree plot."""
    histogram: dict[int, int] = {}
    for node in graph.node_ids():
        degree = graph.degree(node)
        histogram[degree] = histogram.get(degree, 0) + 1
    return dict(sorted(histogram.items()))


def profile(graph: PropertyGraph, clustering_sample: int | None = 20_000) -> GraphProfile:
    """Compute the full Section 2 profile of ``graph``."""
    n = graph.node_count
    sccs = strongly_connected_components(graph)
    wccs = weakly_connected_components(graph)
    in_degrees = [graph.in_degree(node) for node in graph.node_ids()]
    out_degrees = [graph.out_degree(node) for node in graph.node_ids()]
    return GraphProfile(
        nodes=n,
        edges=graph.edge_count,
        scc_count=len(sccs),
        scc_avg_size=(n / len(sccs)) if sccs else 0.0,
        scc_max_size=max((len(c) for c in sccs), default=0),
        wcc_count=len(wccs),
        wcc_avg_size=(n / len(wccs)) if wccs else 0.0,
        wcc_max_size=max((len(c) for c in wccs), default=0),
        avg_in_degree=(sum(in_degrees) / n) if n else 0.0,
        avg_out_degree=(sum(out_degrees) / n) if n else 0.0,
        max_in_degree=max(in_degrees, default=0),
        max_out_degree=max(out_degrees, default=0),
        avg_clustering=average_clustering(graph, sample=clustering_sample),
        self_loops=count_self_loops(graph),
        power_law_alpha=power_law_alpha(graph),
    )
