"""Company graphs (Definition 2.2 of the paper).

A company graph is a property graph whose nodes are companies (label
``C``) and persons (label ``P``) and whose edges are shareholdings (label
``S``) carrying the owned fraction ``w`` in ``(0, 1]``.  Shareholding
edges run company->company or person->company; the paper's dataset also
contains self-loops (companies owning their own shares — buy-backs),
which we permit.
"""

from __future__ import annotations

from typing import Any, Iterator

from .property_graph import Edge, GraphError, Node, NodeId, PropertyGraph

#: Node label for companies (paper's ``C``).
COMPANY = "C"
#: Node label for persons (paper's ``P``).
PERSON = "P"
#: Edge label for shareholdings (paper's ``S``).
SHAREHOLDING = "S"
#: Edge label for personal/family connections (detected, not extensional).
FAMILY = "family"


class CompanyGraph(PropertyGraph):
    """A property graph restricted to the company-graph schema."""

    def add_company(self, company_id: NodeId, **properties: Any) -> Node:
        """Add a company node (features: name, address, legal_form, ...)."""
        return self.add_node(company_id, COMPANY, **properties)

    def add_person(self, person_id: NodeId, **properties: Any) -> Node:
        """Add a person node (features: name, surname, birth_date, ...)."""
        return self.add_node(person_id, PERSON, **properties)

    def add_shareholding(
        self,
        owner: NodeId,
        company: NodeId,
        share: float,
        edge_id: Any = None,
        **properties: Any,
    ) -> Edge:
        """Add a shareholding edge ``owner -> company`` with fraction ``share``.

        ``share`` must lie in ``(0, 1]`` per Definition 2.2; the target
        must be a company; the owner may be a company or a person.
        """
        if not 0 < share <= 1:
            raise GraphError(f"share amount must be in (0, 1], got {share}")
        target = self.node(company)
        if target.label != COMPANY:
            raise GraphError(f"shareholding target {company!r} is not a company")
        source = self.node(owner)
        if source.label not in (COMPANY, PERSON):
            raise GraphError(f"shareholding owner {owner!r} is not a company or person")
        return self.add_edge(
            owner, company, SHAREHOLDING, edge_id=edge_id, w=share, **properties
        )

    # ------------------------------------------------------------------
    # typed accessors
    # ------------------------------------------------------------------

    def companies(self) -> Iterator[Node]:
        return self.nodes(COMPANY)

    def persons(self) -> Iterator[Node]:
        return self.nodes(PERSON)

    def shareholdings(self) -> Iterator[Edge]:
        return self.edges(SHAREHOLDING)

    def is_company(self, node_id: NodeId) -> bool:
        return self.has_node(node_id) and self.node(node_id).label == COMPANY

    def is_person(self, node_id: NodeId) -> bool:
        return self.has_node(node_id) and self.node(node_id).label == PERSON

    def share(self, owner: NodeId, company: NodeId) -> float:
        """Total fraction of ``company`` directly owned by ``owner``.

        Sums parallel shareholding edges (a shareholder may hold several
        share packages with different legal rights).
        """
        total = 0.0
        for edge in self.out_edges(owner, SHAREHOLDING):
            if edge.target == company:
                total += edge.get("w", 0.0)
        return total

    def shareholders(self, company: NodeId) -> Iterator[tuple[NodeId, float]]:
        """(owner, share) pairs over the in-edges of ``company``."""
        for edge in self.in_edges(company, SHAREHOLDING):
            yield (edge.source, edge.get("w", 0.0))

    def holdings(self, owner: NodeId) -> Iterator[tuple[NodeId, float]]:
        """(company, share) pairs over the out-edges of ``owner``."""
        for edge in self.out_edges(owner, SHAREHOLDING):
            yield (edge.target, edge.get("w", 0.0))

    def total_issued(self, company: NodeId) -> float:
        """Sum of all shareholding fractions into ``company`` (sanity <= 1 + eps)."""
        return sum(share for _, share in self.shareholders(company))


def figure1_graph() -> CompanyGraph:
    """The worked example of Figure 1 in the paper.

    Persons P1, P2; companies C..L.  P1 controls C, D, E (via D plus a
    direct 20%), and F (via E and D); P2 controls G, H, I; nobody
    controls L on ownership alone.
    """
    graph = CompanyGraph()
    graph.add_person("P1", name="P1")
    graph.add_person("P2", name="P2")
    for company in ("C", "D", "E", "F", "G", "H", "I", "L"):
        graph.add_company(company, name=company)
    graph.add_shareholding("P1", "C", 0.8)
    graph.add_shareholding("P1", "D", 0.75)
    graph.add_shareholding("P1", "E", 0.2)
    graph.add_shareholding("D", "E", 0.4)
    graph.add_shareholding("D", "F", 0.2)
    graph.add_shareholding("E", "F", 0.4)
    graph.add_shareholding("P2", "G", 0.6)
    graph.add_shareholding("G", "H", 0.6)
    graph.add_shareholding("G", "I", 0.4)
    graph.add_shareholding("H", "I", 0.1)
    graph.add_shareholding("P2", "I", 0.5)
    graph.add_shareholding("F", "L", 0.2)
    graph.add_shareholding("I", "L", 0.4)
    return graph


def figure2_graph() -> CompanyGraph:
    """The worked example of Figure 2 in the paper.

    Persons P1, P2, P3; companies C1..C7.  The figure is not
    machine-readable in our source, so the graph is reconstructed to
    satisfy every statement the text makes about it:

    * P1 controls C4 by means of a direct 80% edge (Example 2.4);
    * P2 controls C7 via C5 and C6 (Example 2.4 / use case 1);
    * P3 owns 40% of C4 and 50% of C6, so C4 and C6 are closely linked
      by Definition 2.6-(iii) with t = 0.2 (Example 2.7);
    * the accumulated ownership of C4 over C7 is exactly 0.2, so C4 and
      C7 are closely linked by Definition 2.6-(i) (Example 2.7).

    Note: the stated shares over-issue C4 (0.8 + 0.4) and C6 (0.6 + 0.5);
    we keep the paper's numbers verbatim — the real dataset contains such
    data-quality artefacts too and the model does not forbid them.
    """
    graph = CompanyGraph()
    for person in ("P1", "P2", "P3"):
        graph.add_person(person, name=person)
    for company in ("C1", "C2", "C3", "C4", "C5", "C6", "C7"):
        graph.add_company(company, name=company)
    # P1 controls C4 by means of a direct 80% edge.
    graph.add_shareholding("P1", "C4", 0.8)
    # P2 controls C5 directly; C5 gives P2 control of C6; C5 and C6
    # jointly own 60% > 50% of C7.
    graph.add_shareholding("P2", "C5", 0.6)
    graph.add_shareholding("C5", "C6", 0.6)
    graph.add_shareholding("C5", "C7", 0.3)
    graph.add_shareholding("C6", "C7", 0.3)
    # Phi(C4, C7) = 0.5 * 0.4 = 0.2 via C3.
    graph.add_shareholding("C4", "C3", 0.5)
    graph.add_shareholding("C3", "C7", 0.4)
    # P3 owns 40% of C4 and 50% of C6 (close link by common owner).
    graph.add_shareholding("P3", "C4", 0.4)
    graph.add_shareholding("P3", "C6", 0.5)
    # Context edges: P1's and P3's other holdings.
    graph.add_shareholding("P1", "C1", 0.55)
    graph.add_shareholding("C1", "C2", 0.5)
    graph.add_shareholding("P3", "C2", 0.5)
    return graph
