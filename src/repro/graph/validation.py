"""Data-quality validation of company graphs.

The paper's Section 1 lists low edge trustworthiness among the reasons
relationship data is missing from enterprise stores, and Section 5 notes
the pipeline performs "data cleaning and quality enhancement steps".
This module makes those checks concrete — each produces typed findings a
pipeline can report or act on:

* over-issued equity (a company's incoming shares sum past 100%);
* self-ownership above a plausibility bound (buy-backs exist, but a
  company majority-owning itself is a data artefact);
* duplicate person records (same name/surname/birth date — typical of
  registry double entries);
* missing identity features (persons lacking the fields the family
  classifiers need);
* orphan shareholders (persons holding nothing — legal in the data but
  often a stale record in an *ownership* extract).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from .company_graph import CompanyGraph
from .property_graph import NodeId

#: Tolerance on the 100%-equity check (rounding artefacts are legitimate).
EQUITY_TOLERANCE = 1e-6
#: A self-held fraction above this is treated as an artefact, not buy-back.
SELF_OWNERSHIP_BOUND = 0.5


@dataclass(frozen=True)
class Finding:
    """One data-quality finding."""

    check: str
    subject: NodeId
    severity: str  # "error" or "warning"
    detail: str


def check_over_issued_equity(graph: CompanyGraph) -> Iterator[Finding]:
    """Companies whose incoming shares sum to more than 100%."""
    for company in graph.companies():
        total = graph.total_issued(company.id)
        if total > 1.0 + EQUITY_TOLERANCE:
            yield Finding(
                "over_issued_equity", company.id, "error",
                f"shares held sum to {total:.4f} (> 1.0)",
            )


def check_self_ownership(graph: CompanyGraph) -> Iterator[Finding]:
    """Companies majority-owning themselves (beyond plausible buy-backs)."""
    for company in graph.companies():
        self_share = graph.share(company.id, company.id)
        if self_share > SELF_OWNERSHIP_BOUND:
            yield Finding(
                "excessive_self_ownership", company.id, "error",
                f"company holds {self_share:.2%} of itself",
            )
        elif self_share > 0:
            yield Finding(
                "self_ownership", company.id, "warning",
                f"buy-back of {self_share:.2%}",
            )


def check_duplicate_persons(graph: CompanyGraph) -> Iterator[Finding]:
    """Distinct person records sharing name, surname and birth date."""
    seen: dict[tuple, NodeId] = {}
    for person in graph.persons():
        key = (
            str(person.get("name") or "").lower(),
            str(person.get("surname") or "").lower(),
            person.get("birth_date"),
        )
        if not key[0] or not key[1] or key[2] is None:
            continue
        if key in seen:
            yield Finding(
                "duplicate_person", person.id, "warning",
                f"same identity as {seen[key]}: {key[0]} {key[1]} {key[2]}",
            )
        else:
            seen[key] = person.id


def check_missing_identity_features(
    graph: CompanyGraph,
    required: tuple[str, ...] = ("surname", "birth_date"),
) -> Iterator[Finding]:
    """Persons lacking the features the family classifiers rely on."""
    for person in graph.persons():
        missing = [f for f in required if person.get(f) in (None, "")]
        if missing:
            yield Finding(
                "missing_identity_features", person.id, "warning",
                f"missing: {', '.join(missing)}",
            )


def check_orphan_shareholders(graph: CompanyGraph) -> Iterator[Finding]:
    """Person records with no shareholding at all."""
    for person in graph.persons():
        if graph.out_degree(person.id) == 0:
            yield Finding(
                "orphan_shareholder", person.id, "warning",
                "person holds no shares",
            )


ALL_CHECKS = (
    check_over_issued_equity,
    check_self_ownership,
    check_duplicate_persons,
    check_missing_identity_features,
    check_orphan_shareholders,
)


def validate(graph: CompanyGraph, checks=ALL_CHECKS) -> list[Finding]:
    """Run the selected checks; findings sorted errors-first."""
    findings: list[Finding] = []
    for check in checks:
        findings.extend(check(graph))
    severity_rank = {"error": 0, "warning": 1}
    return sorted(
        findings,
        key=lambda f: (severity_rank.get(f.severity, 2), f.check, str(f.subject)),
    )


def quality_report(graph: CompanyGraph) -> str:
    """A human-readable validation summary."""
    findings = validate(graph)
    if not findings:
        return "no data-quality findings"
    lines = [f"{len(findings)} finding(s):"]
    for finding in findings:
        lines.append(
            f"  [{finding.severity:7s}] {finding.check}: "
            f"{finding.subject} — {finding.detail}"
        )
    return "\n".join(lines)
