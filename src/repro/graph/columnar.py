"""Columnar graph core: one interned representation shared by every layer.

The paper's architecture (Section 5) has *one* extensional graph feeding
every reasoning task, but historically each of our layers re-derived a
private copy of it: the walker built a dict-of-dicts adjacency and an
internal CSR, integrated ownership rebuilt a ``lil_matrix`` per solve,
the relational mapping re-iterated node/edge objects into facts, and a
service snapshot precomputed all of these per version.  A
:class:`GraphFrame` is the shared substrate instead — the frame/COO-to-
CSR discipline of scipy.sparse and PyG:

* **interning** — every node id gets a stable integer code.  The intern
  order is deterministic and collision-free: ids sort by
  ``(str(id), type, repr(id))``, so the historical ``sorted(key=str)``
  ownership-matrix order is preserved exactly on collision-free graphs
  while ids that stringify identically (``1`` vs ``"1"``) break the tie
  by type instead of by dict iteration order;
* **edge columns** — contiguous numpy arrays for source code, target
  code, label and weight, in edge insertion order;
* **views** — directed CSR and CSC adjacency, the merged-undirected
  adjacency (and its lockstep-walk CSR) the node2vec walker needs, the
  direct-ownership matrix ``W`` and its reusable ``splu`` factorisation,
  label partitions and per-property columns — all materialised lazily
  and cached on the frame.

Frames are obtained through :meth:`GraphFrame.of`, which caches the
frame on the graph object keyed by the graph's ``generation`` counter:
every consumer asking for the same graph version shares one frame (and
therefore one CSR, one factorisation, ...), and any mutation through the
:class:`~repro.graph.property_graph.PropertyGraph` write surface makes
the next ``of`` call rebuild.  A frame captures node/edge object
references at build time, so a superseded frame keeps serving a
consistent snapshot of the version it was built from.

Bit-identity contract: every view reproduces the numbers of the legacy
per-consumer builds exactly — same neighbour order, same float
accumulation order for merged parallel edges, same SuperLU code path for
the ownership solves (``splu(A).solve(b)`` and ``spsolve(A, b)`` share
factorisation defaults) — asserted by the oracle suite in
``tests/test_graph_columnar.py``.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from .company_graph import SHAREHOLDING
from .property_graph import NodeId, PropertyGraph

if TYPE_CHECKING:  # pragma: no cover
    from scipy.sparse import csc_matrix

#: attribute under which frames are cached on the graph object
_CACHE_ATTR = "_columnar_frames"

#: dtype contract of every buffer :meth:`GraphFrame.buffers` exports —
#: the shared-memory codec's precondition.  Integer columns are always
#: int64 (scipy may cache int32 index arrays for small matrices; export
#: normalises them) and float columns always float64, so a segment
#: written at one graph scale attaches identically at any other.
EXPORT_DTYPES: dict[str, np.dtype] = {
    "edge_src": np.dtype(np.int64),
    "edge_dst": np.dtype(np.int64),
    "walk_weights": np.dtype(np.float64),
    "insertion_codes": np.dtype(np.int64),
    "csr_indptr": np.dtype(np.int64),
    "csr_targets": np.dtype(np.int64),
    "csr_positions": np.dtype(np.int64),
    "csc_indptr": np.dtype(np.int64),
    "csc_sources": np.dtype(np.int64),
    "csc_positions": np.dtype(np.int64),
    "walker_indptr": np.dtype(np.int64),
    "walker_neighbors": np.dtype(np.int64),
    "walker_keys": np.dtype(np.float64),
    "walker_degrees": np.dtype(np.int64),
    "share_src": np.dtype(np.int64),
    "share_dst": np.dtype(np.int64),
    "share_w": np.dtype(np.float64),
    "ownership_data": np.dtype(np.float64),
    "ownership_indices": np.dtype(np.int64),
    "ownership_indptr": np.dtype(np.int64),
}


def intern_sort_key(node: NodeId) -> tuple[str, str, str]:
    """Deterministic, collision-free node ordering key.

    Primary key is ``str(node)`` — the historical ownership-matrix order
    — then the type name and ``repr`` break ties between distinct ids
    that stringify identically (``1`` vs ``"1"`` vs ``True``), which the
    old ``sorted(key=str)`` left to dict iteration order.
    """
    return (str(node), type(node).__qualname__, repr(node))


def neighbor_sort_key(item: tuple[NodeId, Any]) -> str:
    """Adjacency-list neighbour order: identical to sorting by ``str(node)``,
    without allocating a fresh string per comparison for the (ubiquitous)
    string-id case."""
    node = item[0]
    return node if type(node) is str else str(node)


def build_walker_csr(adjacency: dict[NodeId, list[tuple[NodeId, float]]]) -> tuple:
    """Int-indexed CSR view of a walker adjacency for lockstep stepping.

    ``keys[indptr[i] + j] = i + cum_ij / total_i`` is globally monotone,
    so one ``searchsorted`` resolves a whole batch of next-step draws
    (query ``i + u``); positions are clipped back into their row to
    absorb boundary ties.  (Moved here from ``RandomWalker._ensure_csr``
    so the frame can own and share the buffers.)
    """
    node_list = list(adjacency)
    n = len(node_list)
    node_index = {node: i for i, node in enumerate(node_list)}
    counts: list[int] = []
    flat_index: list[int] = []
    flat_weights: list[float] = []
    for node in node_list:
        neighbors = adjacency[node]
        counts.append(len(neighbors))
        flat_index.extend(node_index[neighbor] for neighbor, _ in neighbors)
        flat_weights.extend(weight for _, weight in neighbors)
    degrees = np.asarray(counts, dtype=np.int64)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    neighbors_arr = np.asarray(flat_index, dtype=np.int64)
    if neighbors_arr.size:
        # segmented cumulative weights, normalised per row and offset by
        # the row index (exact row end: i + 1.0)
        cum = np.concatenate(
            ([0.0], np.cumsum(np.asarray(flat_weights, dtype=np.float64)))
        )
        row_base = np.repeat(cum[indptr[:-1]], degrees)
        totals = np.repeat(cum[indptr[1:]] - cum[indptr[:-1]], degrees)
        row_of = np.repeat(np.arange(n, dtype=np.float64), degrees)
        keys = row_of + (cum[1:] - row_base) / totals
        nonempty = degrees > 0
        keys[indptr[1:][nonempty] - 1] = (
            np.arange(n, dtype=np.float64)[nonempty] + 1.0
        )
    else:
        keys = np.empty(0, dtype=np.float64)
    node_objects = np.empty(n, dtype=object)
    node_objects[:] = node_list
    return (node_list, node_index, indptr, neighbors_arr, keys, degrees, node_objects)


class GraphFrame:
    """One immutable columnar view of a graph version.

    Cheap to build (one pass over nodes + edges), everything else lazy.
    All derived views are cached on the frame, so sharing the frame means
    sharing the buffers.  Do not mutate returned arrays or dicts.
    """

    def __init__(self, graph: PropertyGraph, weight_property: str = "w"):
        self.weight_property = weight_property
        self.generation = graph.generation
        node_objects = list(graph.nodes())
        order = sorted(range(len(node_objects)),
                       key=lambda i: intern_sort_key(node_objects[i].id))
        #: node objects / ids in intern order
        self._node_objects = [node_objects[i] for i in order]
        self.nodes: list[NodeId] = [node.id for node in self._node_objects]
        #: node id -> intern code
        self.index: dict[NodeId, int] = {node: i for i, node in enumerate(self.nodes)}
        #: intern codes in graph insertion order (the legacy iteration order)
        self.insertion_codes = np.empty(len(order), dtype=np.int64)
        for intern_code, insertion_pos in enumerate(order):
            self.insertion_codes[insertion_pos] = intern_code
        self.node_labels = np.empty(len(self.nodes), dtype=object)
        for code, node in enumerate(self._node_objects):
            self.node_labels[code] = node.label

        edges = list(graph.edges())
        self._edge_objects = edges
        m = len(edges)
        self.edge_src = np.empty(m, dtype=np.int64)
        self.edge_dst = np.empty(m, dtype=np.int64)
        self.edge_labels = np.empty(m, dtype=object)
        #: the walker's weight semantics: missing / None / 0 -> 1.0
        self.walk_weights = np.empty(m, dtype=np.float64)
        index = self.index
        for pos, edge in enumerate(edges):
            self.edge_src[pos] = index[edge.source]
            self.edge_dst[pos] = index[edge.target]
            self.edge_labels[pos] = edge.label
            self.walk_weights[pos] = float(edge.properties.get(weight_property, 1.0) or 1.0)

        # lazy caches
        self._csr: tuple | None = None
        self._csc: tuple | None = None
        self._undirected: dict[NodeId, list[tuple[NodeId, float]]] | None = None
        self._walker_csr: tuple | None = None
        self._share_coo: tuple | None = None
        self._ownership_w: "csc_matrix | None" = None
        self._ownership_systems: dict[float, tuple] = {}
        self._node_columns: dict[str, np.ndarray] = {}
        self._edge_columns: dict[str, np.ndarray] = {}
        self._label_members: dict[str | None, np.ndarray] = {}

    # ------------------------------------------------------------------
    # acquisition
    # ------------------------------------------------------------------

    @classmethod
    def of(cls, graph: PropertyGraph, weight_property: str = "w") -> "GraphFrame":
        """The cached frame of ``graph``'s current generation.

        Builds at most one frame per (graph version, weight property);
        consumers calling ``of`` with the same arguments share buffers.
        """
        cache = graph.__dict__.setdefault(_CACHE_ATTR, {})
        frame = cache.get(weight_property)
        if frame is None or frame.generation != graph.generation:
            frame = cls(graph, weight_property)
            cache[weight_property] = frame
        return frame

    def is_current(self, graph: PropertyGraph) -> bool:
        """Whether this frame still reflects ``graph``'s live state."""
        return self.generation == graph.generation

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    @property
    def edge_count(self) -> int:
        return len(self._edge_objects)

    # ------------------------------------------------------------------
    # directed adjacency views
    # ------------------------------------------------------------------

    def csr(self) -> tuple:
        """Directed out-adjacency ``(indptr, targets, edge_positions)``.

        Row ``i`` spans ``indptr[i]:indptr[i+1]`` of ``targets`` (intern
        codes) and ``edge_positions`` (indices into the edge columns, so
        any weight or property column can be gathered).  Within a row,
        edges keep insertion order — the order of ``PropertyGraph._out``.
        """
        if self._csr is None:
            self._csr = self._build_adjacency_index(self.edge_src, self.edge_dst)
        return self._csr

    def csc(self) -> tuple:
        """Directed in-adjacency ``(indptr, sources, edge_positions)``."""
        if self._csc is None:
            self._csc = self._build_adjacency_index(self.edge_dst, self.edge_src)
        return self._csc

    def _build_adjacency_index(self, major: np.ndarray, minor: np.ndarray) -> tuple:
        n = len(self.nodes)
        order = np.argsort(major, kind="stable")
        counts = np.bincount(major, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return (indptr, minor[order], order)

    def out_degrees(self) -> np.ndarray:
        indptr, _, _ = self.csr()
        return np.diff(indptr)

    def in_degrees(self) -> np.ndarray:
        indptr, _, _ = self.csc()
        return np.diff(indptr)

    def successor_codes(self, node: NodeId) -> np.ndarray:
        indptr, targets, _ = self.csr()
        code = self.index[node]
        return targets[indptr[code]:indptr[code + 1]]

    def predecessor_codes(self, node: NodeId) -> np.ndarray:
        indptr, sources, _ = self.csc()
        code = self.index[node]
        return sources[indptr[code]:indptr[code + 1]]

    # ------------------------------------------------------------------
    # the walker's merged-undirected view
    # ------------------------------------------------------------------

    def undirected_adjacency(self) -> dict[NodeId, list[tuple[NodeId, float]]]:
        """The node2vec adjacency: undirected, parallel edges merged by sum.

        Bit-identical to the historical ``build_adjacency``: keys iterate
        in graph insertion order, neighbour lists sort by ``str(id)``,
        and parallel/reciprocal weights accumulate in edge insertion
        order.  Treat as read-only — the dict is shared by every consumer
        of this frame (``build_adjacency`` hands out copies).
        """
        if self._undirected is None:
            merged: dict[NodeId, dict[NodeId, float]] = {
                self.nodes[code]: {} for code in self.insertion_codes
            }
            nodes = self.nodes
            weights = self.walk_weights.tolist()
            for pos, (i, j) in enumerate(zip(self.edge_src.tolist(), self.edge_dst.tolist())):
                if i == j:
                    continue
                a, b = nodes[i], nodes[j]
                weight = weights[pos]
                forward = merged[a]
                forward[b] = forward.get(b, 0.0) + weight
                backward = merged[b]
                backward[a] = backward.get(a, 0.0) + weight
            self._undirected = {
                node: sorted(neighbors.items(), key=neighbor_sort_key)
                for node, neighbors in merged.items()
            }
        return self._undirected

    def walker_csr(self) -> tuple:
        """The lockstep-walk CSR over :meth:`undirected_adjacency`, cached."""
        if self._walker_csr is None:
            self._walker_csr = build_walker_csr(self.undirected_adjacency())
        return self._walker_csr

    # ------------------------------------------------------------------
    # ownership views
    # ------------------------------------------------------------------

    def shareholding_coo(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Shareholding edges as ``(src_codes, dst_codes, shares)`` columns.

        Edge insertion order; a missing ``w`` maps to 0.0 exactly like
        the legacy ``edge.get("w", 0.0)``.
        """
        if self._share_coo is None:
            positions = [
                pos for pos, label in enumerate(self.edge_labels.tolist())
                if label == SHAREHOLDING
            ]
            shares = np.empty(len(positions), dtype=np.float64)
            for out, pos in enumerate(positions):
                shares[out] = float(self._edge_objects[pos].properties.get("w", 0.0))
            idx = np.asarray(positions, dtype=np.int64)
            self._share_coo = (self.edge_src[idx], self.edge_dst[idx], shares)
        return self._share_coo

    def ownership_w(self) -> "csc_matrix":
        """The direct-ownership matrix ``W`` (CSC), parallel edges summed.

        Duplicate (owner, company) entries accumulate in edge insertion
        order via an unbuffered ``np.add.at`` — the same left-to-right
        float additions the legacy ``lil_matrix[i, j] += w`` loop made,
        so every cell is bit-identical.
        """
        if self._ownership_w is None:
            from scipy.sparse import csc_matrix

            n = len(self.nodes)
            src, dst, shares = self.shareholding_coo()
            if src.size == 0:
                self._ownership_w = csc_matrix((n, n))
            else:
                keys = src * np.int64(n) + dst
                unique, inverse = np.unique(keys, return_inverse=True)
                data = np.zeros(len(unique), dtype=np.float64)
                np.add.at(data, inverse, shares)
                self._ownership_w = csc_matrix(
                    (data, (unique // n, unique % n)), shape=(n, n)
                )
        return self._ownership_w

    def ownership_system(self, damping: float = 1.0) -> tuple:
        """``(W_damped_csc, transpose_csc, solver)`` for integrated-ownership
        point solves, factorised once per (frame, damping).

        ``solver`` is ``splu(I - W^T).solve`` — bit-identical to the
        per-source ``spsolve`` the legacy path ran (same SuperLU
        defaults), but the O(n^1.5..2) factorisation is paid once and
        shared by every UBO / close-link / endpoint solve on this frame.
        Falls back to per-call ``spsolve`` when the system is singular
        (fully circular ownership), preserving the legacy warn-and-return
        behaviour.
        """
        cached = self._ownership_systems.get(damping)
        if cached is None:
            from scipy.sparse import identity
            from scipy.sparse.linalg import splu, spsolve

            w = self.ownership_w()
            if damping != 1.0:
                w = (w * damping).tocsc()
            transpose = w.T.tocsc()
            system = (identity(len(self.nodes), format="csc") - transpose).tocsc()
            try:
                solver = splu(system).solve
            except RuntimeError:  # singular: keep spsolve's warn + inf result
                solver = lambda rhs: spsolve(system, rhs)  # noqa: E731
            cached = (w, transpose, solver)
            self._ownership_systems[damping] = cached
        return cached

    def has_ownership_system(self, damping: float = 1.0) -> bool:
        """Whether a factorised ownership system is already cached."""
        return damping in self._ownership_systems

    def adopt_ownership_system(self, damping: float, system: tuple) -> None:
        """Install an externally derived ``(w, transpose, solver)`` triple.

        Used by the low-rank (Sherman-Morrison-Woodbury) update path in
        :mod:`repro.ownership.matrix`: after a small shareholding delta
        the previous frame's factorisation is corrected instead of
        redone, and the corrected solver is adopted by the new frame so
        every later point solve on this frame reuses it.
        """
        self._ownership_systems[damping] = system

    # ------------------------------------------------------------------
    # buffer export / attach (the shared-memory substrate)
    # ------------------------------------------------------------------

    def buffers(self) -> dict[str, np.ndarray]:
        """Every numeric buffer of this frame, keyed by :data:`EXPORT_DTYPES`.

        Materialises the lazy views (CSR/CSC, walker CSR, shareholding
        COO, ownership ``W``) and returns each as a **C-contiguous,
        dtype-stable** 1-D array — the precondition of the shared-memory
        codec in :mod:`repro.service.shm`.  Arrays already satisfying the
        contract are returned as-is (same objects the frame caches);
        anything non-contiguous or off-dtype (scipy's int32 index arrays
        on small matrices) is normalised to a contiguous copy, leaving
        the cached view untouched.
        """
        csr_indptr, csr_targets, csr_positions = self.csr()
        csc_indptr, csc_sources, csc_positions = self.csc()
        _, _, w_indptr, w_neighbors, w_keys, w_degrees, _ = self.walker_csr()
        share_src, share_dst, share_w = self.shareholding_coo()
        ownership = self.ownership_w()
        raw = {
            "edge_src": self.edge_src,
            "edge_dst": self.edge_dst,
            "walk_weights": self.walk_weights,
            "insertion_codes": self.insertion_codes,
            "csr_indptr": csr_indptr,
            "csr_targets": csr_targets,
            "csr_positions": csr_positions,
            "csc_indptr": csc_indptr,
            "csc_sources": csc_sources,
            "csc_positions": csc_positions,
            "walker_indptr": w_indptr,
            "walker_neighbors": w_neighbors,
            "walker_keys": w_keys,
            "walker_degrees": w_degrees,
            "share_src": share_src,
            "share_dst": share_dst,
            "share_w": share_w,
            "ownership_data": ownership.data,
            "ownership_indices": ownership.indices,
            "ownership_indptr": ownership.indptr,
        }
        out: dict[str, np.ndarray] = {}
        for name, array in raw.items():
            wanted = EXPORT_DTYPES[name]
            if array.dtype != wanted:
                array = array.astype(wanted)
            if not array.flags.c_contiguous:
                array = np.ascontiguousarray(array)
            out[name] = array
        return out

    @property
    def nbytes(self) -> int:
        """Total bytes of the exportable numeric buffers (materialises
        every lazy view, like :meth:`buffers`)."""
        return sum(array.nbytes for array in self.buffers().values())

    @classmethod
    def attach(
        cls,
        graph: PropertyGraph,
        buffers: dict[str, np.ndarray],
        weight_property: str = "w",
    ) -> "GraphFrame":
        """A frame over ``graph`` whose numeric buffers are ``buffers``.

        The attach point of the shared-memory codec: the object-side
        tables (intern order, labels, node/edge references) are rebuilt
        from ``graph`` — they are per-process Python objects either way —
        while every numeric column and lazily cached view is *adopted*
        from ``buffers`` (typically zero-copy views over one
        ``multiprocessing.shared_memory`` segment), so N attaching
        processes share one copy of the heavy arrays and skip the
        CSR/CSC/COO/W recomputation entirely.  Shapes are validated
        against the freshly interned structure; the buffers themselves
        are trusted (the codec's tests assert value equality).
        """
        frame = cls(graph, weight_property)
        for name in ("edge_src", "edge_dst", "walk_weights", "insertion_codes"):
            mine = getattr(frame, name)
            theirs = buffers[name]
            if mine.shape != theirs.shape:
                raise ValueError(
                    f"buffer {name!r} shape {theirs.shape} does not match the "
                    f"graph's structure {mine.shape}"
                )
            setattr(frame, name, theirs)
        frame._csr = (
            buffers["csr_indptr"], buffers["csr_targets"], buffers["csr_positions"]
        )
        frame._csc = (
            buffers["csc_indptr"], buffers["csc_sources"], buffers["csc_positions"]
        )
        frame._share_coo = (
            buffers["share_src"], buffers["share_dst"], buffers["share_w"]
        )
        from scipy.sparse import csc_matrix

        n = len(frame.nodes)
        frame._ownership_w = csc_matrix(
            (
                buffers["ownership_data"],
                buffers["ownership_indices"],
                buffers["ownership_indptr"],
            ),
            shape=(n, n),
            copy=False,
        )
        # the walker CSR's object tables iterate the merged-undirected
        # adjacency's key order == graph insertion order
        node_list = [frame.nodes[code] for code in frame.insertion_codes.tolist()]
        node_index = {node: i for i, node in enumerate(node_list)}
        node_objects = np.empty(len(node_list), dtype=object)
        node_objects[:] = node_list
        frame._walker_csr = (
            node_list,
            node_index,
            buffers["walker_indptr"],
            buffers["walker_neighbors"],
            buffers["walker_keys"],
            buffers["walker_degrees"],
            node_objects,
        )
        return frame

    @classmethod
    def attach_mmap(
        cls,
        graph: PropertyGraph,
        directory: "str | Path",
        weight_property: str = "w",
    ) -> "GraphFrame":
        """:meth:`attach` with per-column npy files as the buffer source.

        The disk twin of the shared-memory attach: each
        :data:`EXPORT_DTYPES` buffer is mapped read-only straight off
        ``directory/<name>.npy`` (``np.load(..., mmap_mode="r")``), so
        the kernel pages columns in on demand and attach cost is
        independent of buffer size.  The durable frame store
        (:class:`repro.storage.FrameStore`) layers manifest and checksum
        validation on top; this raw entry point serves any directory of
        well-formed columns.
        """
        directory = Path(directory)
        buffers: dict[str, np.ndarray] = {}
        for name, dtype in EXPORT_DTYPES.items():
            view = np.load(directory / f"{name}.npy", mmap_mode="r")
            if view.dtype != dtype:
                raise ValueError(
                    f"column {name!r} has dtype {view.dtype}, expected {dtype}"
                )
            view.flags.writeable = False
            buffers[name] = view
        return cls.attach(graph, buffers, weight_property=weight_property)

    def adopt_as_cache_of(self, graph: PropertyGraph) -> None:
        """Install this frame as ``graph``'s cached frame, so every
        later ``GraphFrame.of(graph)`` (custom-threshold endpoint
        recomputations, ownership sweeps) resolves to it instead of
        rebuilding private buffers."""
        if self.generation != graph.generation:
            raise ValueError(
                f"frame generation {self.generation} does not match the "
                f"graph's generation {graph.generation}"
            )
        graph.__dict__.setdefault(_CACHE_ATTR, {})[self.weight_property] = self

    # ------------------------------------------------------------------
    # label partitions and property columns (the relational mapping's food)
    # ------------------------------------------------------------------

    def label_members(self, label: str | None) -> np.ndarray:
        """Intern codes of the nodes carrying ``label``, insertion order."""
        members = self._label_members.get(label)
        if members is None:
            labels_by_insertion = self.node_labels[self.insertion_codes]
            if label is None:
                mask = np.asarray(
                    [value is None for value in labels_by_insertion.tolist()], dtype=bool
                )
            else:
                mask = labels_by_insertion == label
            members = self.insertion_codes[mask]
            self._label_members[label] = members
        return members

    def node_property_column(self, prop: str) -> np.ndarray:
        """Object column of ``prop`` over nodes, aligned to intern codes
        (missing -> None, like ``properties.get``)."""
        column = self._node_columns.get(prop)
        if column is None:
            column = np.empty(len(self._node_objects), dtype=object)
            for code, node in enumerate(self._node_objects):
                column[code] = node.properties.get(prop)
            self._node_columns[prop] = column
        return column

    def edge_property_column(self, prop: str) -> np.ndarray:
        """Object column of ``prop`` over edges, edge insertion order."""
        column = self._edge_columns.get(prop)
        if column is None:
            column = np.empty(len(self._edge_objects), dtype=object)
            for pos, edge in enumerate(self._edge_objects):
                column[pos] = edge.properties.get(prop)
            self._edge_columns[prop] = column
        return column

    def edge_positions(self, label: str | None) -> np.ndarray:
        """Edge-column positions of the edges carrying ``label``."""
        if label is None:
            mask = np.asarray(
                [value is None for value in self.edge_labels.tolist()], dtype=bool
            )
            return np.nonzero(mask)[0]
        return np.nonzero(self.edge_labels == label)[0]

    def node_ids_at(self, codes: Sequence[int] | np.ndarray) -> list[NodeId]:
        """Node ids for a batch of intern codes."""
        nodes = self.nodes
        return [nodes[code] for code in codes]

    def __repr__(self) -> str:
        return (
            f"GraphFrame(nodes={len(self.nodes)}, edges={len(self._edge_objects)}, "
            f"generation={self.generation})"
        )
