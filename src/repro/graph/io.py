"""Import/export of company graphs (CSV and JSON).

The paper's pipeline ingests relational enterprise data via ETL jobs; this
module provides the file-level half of that: companies, persons and
shareholdings as three CSV files (mirroring the Chambers-of-Commerce
extract layout), plus a single-file JSON format for whole property graphs.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any

from .company_graph import SHAREHOLDING, CompanyGraph
from .property_graph import PropertyGraph

COMPANY_FIELDS = ("id", "name", "address", "incorporation_date", "legal_form")
PERSON_FIELDS = ("id", "name", "surname", "birth_date", "birth_place", "sex", "address", "father_name")
SHAREHOLDING_FIELDS = ("owner", "company", "w", "right")


def write_company_csv(graph: CompanyGraph, directory: str | Path) -> None:
    """Write ``companies.csv``, ``persons.csv`` and ``shareholdings.csv``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    with open(directory / "companies.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(COMPANY_FIELDS)
        for node in graph.companies():
            writer.writerow([node.id] + [node.get(f, "") for f in COMPANY_FIELDS[1:]])

    with open(directory / "persons.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(PERSON_FIELDS)
        for node in graph.persons():
            writer.writerow([node.id] + [node.get(f, "") for f in PERSON_FIELDS[1:]])

    with open(directory / "shareholdings.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(SHAREHOLDING_FIELDS)
        for edge in graph.shareholdings():
            writer.writerow(
                [edge.source, edge.target, edge.get("w", ""), edge.get("right", "")]
            )


def read_company_csv(directory: str | Path) -> CompanyGraph:
    """Load a company graph written by :func:`write_company_csv`."""
    directory = Path(directory)
    graph = CompanyGraph()

    with open(directory / "companies.csv", newline="") as handle:
        for row in csv.DictReader(handle):
            properties = {k: v for k, v in row.items() if k != "id" and v}
            graph.add_company(row["id"], **properties)

    with open(directory / "persons.csv", newline="") as handle:
        for row in csv.DictReader(handle):
            properties = {k: v for k, v in row.items() if k != "id" and v}
            graph.add_person(row["id"], **properties)

    with open(directory / "shareholdings.csv", newline="") as handle:
        for row in csv.DictReader(handle):
            extra: dict[str, Any] = {}
            if row.get("right"):
                extra["right"] = row["right"]
            graph.add_shareholding(row["owner"], row["company"], float(row["w"]), **extra)

    return graph


def to_json(graph: PropertyGraph) -> dict[str, Any]:
    """Serialise any property graph to a JSON-compatible dict."""
    return {
        "nodes": [
            {"id": node.id, "label": node.label, "properties": node.properties}
            for node in graph.nodes()
        ],
        "edges": [
            {
                "id": edge.id,
                "source": edge.source,
                "target": edge.target,
                "label": edge.label,
                "properties": edge.properties,
            }
            for edge in graph.edges()
        ],
    }


def from_json(payload: dict[str, Any], company_graph: bool = True) -> PropertyGraph:
    """Rebuild a graph serialised by :func:`to_json`.

    With ``company_graph=True`` (the default) the result is a
    :class:`CompanyGraph`; shareholding edges go through the validating
    constructor so malformed share amounts are rejected on load.
    """
    graph: PropertyGraph = CompanyGraph() if company_graph else PropertyGraph()
    for node in payload.get("nodes", ()):
        graph.add_node(node["id"], node.get("label"), **node.get("properties", {}))
    for edge in payload.get("edges", ()):
        properties = dict(edge.get("properties", {}))
        if company_graph and edge.get("label") == SHAREHOLDING:
            share = properties.pop("w")
            graph.add_shareholding(  # type: ignore[union-attr]
                edge["source"], edge["target"], share,
                edge_id=edge.get("id"), **properties,
            )
        else:
            graph.add_edge(
                edge["source"], edge["target"], edge.get("label"),
                edge_id=edge.get("id"), **properties,
            )
    return graph


def save_json(graph: PropertyGraph, path: str | Path) -> None:
    with open(path, "w") as handle:
        json.dump(to_json(graph), handle)


def load_json(path: str | Path, company_graph: bool = True) -> PropertyGraph:
    with open(path) as handle:
        return from_json(json.load(handle), company_graph=company_graph)
