"""Import/export of company graphs (CSV and JSON).

The paper's pipeline ingests relational enterprise data via ETL jobs; this
module provides the file-level half of that: companies, persons and
shareholdings as three CSV files (mirroring the Chambers-of-Commerce
extract layout), plus a single-file JSON format for whole property graphs.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any

from .company_graph import SHAREHOLDING, CompanyGraph
from .property_graph import PropertyGraph

COMPANY_FIELDS = ("id", "name", "address", "incorporation_date", "legal_form")
PERSON_FIELDS = ("id", "name", "surname", "birth_date", "birth_place", "sex", "address", "father_name")
SHAREHOLDING_FIELDS = ("owner", "company", "w", "right")


def write_company_csv(graph: CompanyGraph, directory: str | Path) -> None:
    """Write ``companies.csv``, ``persons.csv`` and ``shareholdings.csv``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    with open(directory / "companies.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(COMPANY_FIELDS)
        for node in graph.companies():
            writer.writerow([node.id] + [node.get(f, "") for f in COMPANY_FIELDS[1:]])

    with open(directory / "persons.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(PERSON_FIELDS)
        for node in graph.persons():
            writer.writerow([node.id] + [node.get(f, "") for f in PERSON_FIELDS[1:]])

    with open(directory / "shareholdings.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(SHAREHOLDING_FIELDS)
        for edge in graph.shareholdings():
            writer.writerow(
                [edge.source, edge.target, edge.get("w", ""), edge.get("right", "")]
            )


def load_company_csv_into(directory: str | Path, sink):
    """Stream a CSV extract row-by-row into ``sink``; returns the sink.

    ``sink`` is anything with the ``add_company`` / ``add_person`` /
    ``add_shareholding`` surface — a :class:`CompanyGraph`, or a
    :class:`~repro.storage.StreamingGraphWriter` when the extract is too
    large to hold in memory.  Only one CSV row is resident at a time.
    """
    directory = Path(directory)

    with open(directory / "companies.csv", newline="") as handle:
        for row in csv.DictReader(handle):
            properties = {k: v for k, v in row.items() if k != "id" and v}
            sink.add_company(row["id"], **properties)

    with open(directory / "persons.csv", newline="") as handle:
        for row in csv.DictReader(handle):
            properties = {k: v for k, v in row.items() if k != "id" and v}
            sink.add_person(row["id"], **properties)

    with open(directory / "shareholdings.csv", newline="") as handle:
        for row in csv.DictReader(handle):
            extra: dict[str, Any] = {}
            if row.get("right"):
                extra["right"] = row["right"]
            sink.add_shareholding(row["owner"], row["company"], float(row["w"]), **extra)

    return sink


def read_company_csv(directory: str | Path) -> CompanyGraph:
    """Load a company graph written by :func:`write_company_csv`."""
    return load_company_csv_into(directory, CompanyGraph())


def to_json(graph: PropertyGraph) -> dict[str, Any]:
    """Serialise any property graph to a JSON-compatible dict."""
    return {
        "nodes": [
            {"id": node.id, "label": node.label, "properties": node.properties}
            for node in graph.nodes()
        ],
        "edges": [
            {
                "id": edge.id,
                "source": edge.source,
                "target": edge.target,
                "label": edge.label,
                "properties": edge.properties,
            }
            for edge in graph.edges()
        ],
    }


def _add_json_node(graph: PropertyGraph, node: dict[str, Any]) -> None:
    graph.add_node(node["id"], node.get("label"), **node.get("properties", {}))


def _add_json_edge(graph: PropertyGraph, edge: dict[str, Any], company_graph: bool) -> None:
    properties = dict(edge.get("properties", {}))
    if company_graph and edge.get("label") == SHAREHOLDING:
        share = properties.pop("w")
        graph.add_shareholding(  # type: ignore[union-attr]
            edge["source"], edge["target"], share,
            edge_id=edge.get("id"), **properties,
        )
    else:
        graph.add_edge(
            edge["source"], edge["target"], edge.get("label"),
            edge_id=edge.get("id"), **properties,
        )


def from_json(payload: dict[str, Any], company_graph: bool = True) -> PropertyGraph:
    """Rebuild a graph serialised by :func:`to_json`.

    With ``company_graph=True`` (the default) the result is a
    :class:`CompanyGraph`; shareholding edges go through the validating
    constructor so malformed share amounts are rejected on load.
    """
    graph: PropertyGraph = CompanyGraph() if company_graph else PropertyGraph()
    for node in payload.get("nodes", ()):
        _add_json_node(graph, node)
    for edge in payload.get("edges", ()):
        _add_json_edge(graph, edge, company_graph)
    return graph


def save_json(graph: PropertyGraph, path: str | Path) -> None:
    with open(path, "w") as handle:
        json.dump(to_json(graph), handle)


def iter_graph_json(path: str | Path, chunk_size: int = 1 << 16):
    """Incrementally parse a :func:`to_json` document.

    Yields ``(key, element)`` pairs — ``("nodes", {...})`` then
    ``("edges", {...})`` in document order — holding one array element
    plus one read chunk in memory, never the whole file.  Top-level keys
    whose value is not an array are decoded and skipped.
    """
    decoder = json.JSONDecoder()
    with open(path) as handle:
        buf = ""
        pos = 0

        def skip_ws() -> str:
            """Advance past whitespace; returns the next character."""
            nonlocal buf, pos
            while True:
                while pos < len(buf):
                    if buf[pos] not in " \t\r\n":
                        return buf[pos]
                    pos += 1
                buf = handle.read(chunk_size)  # everything before pos consumed
                pos = 0
                if not buf:
                    raise ValueError(f"malformed graph JSON: truncated {path}")

        def decode_value() -> Any:
            """One JSON value at the cursor, pulling chunks as needed."""
            nonlocal buf, pos
            skip_ws()
            buf = buf[pos:]  # bound memory: drop the consumed prefix
            pos = 0
            while True:
                try:
                    value, end = decoder.raw_decode(buf)
                except ValueError:
                    chunk = handle.read(chunk_size)
                    if not chunk:  # not a truncation — genuinely malformed
                        raise
                    buf += chunk
                else:
                    pos = end
                    return value

        def expect(char: str) -> None:
            nonlocal pos
            if skip_ws() != char:
                raise ValueError(
                    f"malformed graph JSON: expected {char!r}, got {buf[pos]!r}"
                )
            pos += 1

        expect("{")
        if skip_ws() == "}":
            return
        while True:
            key = decode_value()
            if not isinstance(key, str):
                raise ValueError(f"malformed graph JSON: non-string key {key!r}")
            expect(":")
            if skip_ws() == "[":
                pos += 1
                if skip_ws() == "]":
                    pos += 1
                else:
                    while True:
                        yield key, decode_value()
                        if skip_ws() == "]":
                            pos += 1
                            break
                        expect(",")
            else:
                decode_value()  # non-array value: decode and drop
            if skip_ws() == "}":
                return
            expect(",")


def load_json(path: str | Path, company_graph: bool = True) -> PropertyGraph:
    """Load a graph JSON file, streaming one element at a time."""
    graph: PropertyGraph = CompanyGraph() if company_graph else PropertyGraph()
    for key, element in iter_graph_json(path):
        if key == "nodes":
            _add_json_node(graph, element)
        elif key == "edges":
            _add_json_edge(graph, element, company_graph)
    return graph
