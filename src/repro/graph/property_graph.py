"""Property graphs (Definition 2.1 of the paper).

A property graph has nodes ``N``, edges ``E`` disjoint from ``N``, an
incidence function ``rho`` mapping each edge to a pair of nodes, a partial
labelling ``lambda`` over nodes and edges, and a partial property map
``sigma`` assigning values to (element, property) pairs.

This module keeps the model faithful but pragmatic: node/edge identifiers
are arbitrary hashables, labels are strings, and properties live in plain
dicts.  Adjacency indexes (out/in) are maintained incrementally so that
traversal is O(degree).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable, Iterator

NodeId = Hashable
EdgeId = Hashable


class GraphError(ValueError):
    """Raised on malformed graph operations (duplicate ids, dangling edges...)."""


@dataclass
class Node:
    """A labelled node with a property map."""

    id: NodeId
    label: str | None = None
    properties: dict[str, Any] = field(default_factory=dict)

    def get(self, name: str, default: Any = None) -> Any:
        return self.properties.get(name, default)


@dataclass
class Edge:
    """A labelled, directed edge with a property map."""

    id: EdgeId
    source: NodeId
    target: NodeId
    label: str | None = None
    properties: dict[str, Any] = field(default_factory=dict)

    def get(self, name: str, default: Any = None) -> Any:
        return self.properties.get(name, default)


class PropertyGraph:
    """A directed property graph with incremental adjacency indexes."""

    def __init__(self) -> None:
        self._nodes: dict[NodeId, Node] = {}
        self._edges: dict[EdgeId, Edge] = {}
        self._out: dict[NodeId, list[EdgeId]] = {}
        self._in: dict[NodeId, list[EdgeId]] = {}
        self._next_edge_id = 0
        self._generation = 0

    @property
    def generation(self) -> int:
        """Monotone mutation counter — the cache-invalidation contract.

        Every structural write (node/edge add or remove) and every
        property write routed through :meth:`set_property` bumps it;
        derived views (notably :class:`~repro.graph.columnar.GraphFrame`)
        are valid exactly as long as the generation they were built at is
        still current.  Mutating ``node.properties`` dicts directly
        bypasses the counter — use :meth:`set_property` (or
        :meth:`GraphStore.set_property <repro.graph.store.GraphStore.set_property>`)
        when cached views must notice.
        """
        return self._generation

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_node(
        self,
        node_id: NodeId,
        label: str | None = None,
        **properties: Any,
    ) -> Node:
        """Add a node; raises :class:`GraphError` if the id already exists."""
        if node_id in self._nodes:
            raise GraphError(f"node {node_id!r} already exists")
        node = Node(node_id, label, dict(properties))
        self._generation += 1
        self._nodes[node_id] = node
        self._out[node_id] = []
        self._in[node_id] = []
        return node

    def ensure_node(self, node_id: NodeId, label: str | None = None, **properties: Any) -> Node:
        """Return the node, creating it (with the given label) if missing."""
        node = self._nodes.get(node_id)
        if node is None:
            return self.add_node(node_id, label, **properties)
        return node

    def add_edge(
        self,
        source: NodeId,
        target: NodeId,
        label: str | None = None,
        edge_id: EdgeId | None = None,
        **properties: Any,
    ) -> Edge:
        """Add a directed edge between existing nodes."""
        if source not in self._nodes:
            raise GraphError(f"source node {source!r} does not exist")
        if target not in self._nodes:
            raise GraphError(f"target node {target!r} does not exist")
        if edge_id is None:
            edge_id = f"e{self._next_edge_id}"
            self._next_edge_id += 1
        if edge_id in self._edges:
            raise GraphError(f"edge {edge_id!r} already exists")
        edge = Edge(edge_id, source, target, label, dict(properties))
        self._generation += 1
        self._edges[edge_id] = edge
        self._out[source].append(edge_id)
        self._in[target].append(edge_id)
        return edge

    def remove_edge(self, edge_id: EdgeId) -> Edge:
        """Remove and return an edge; raises if absent."""
        edge = self._edges.pop(edge_id, None)
        if edge is None:
            raise GraphError(f"edge {edge_id!r} does not exist")
        self._generation += 1
        self._out[edge.source].remove(edge_id)
        self._in[edge.target].remove(edge_id)
        return edge

    def remove_node(self, node_id: NodeId) -> Node:
        """Remove a node and all incident edges."""
        node = self._nodes.pop(node_id, None)
        if node is None:
            raise GraphError(f"node {node_id!r} does not exist")
        self._generation += 1
        for edge_id in list(self._out[node_id]) + list(self._in[node_id]):
            if edge_id in self._edges:
                self.remove_edge(edge_id)
        del self._out[node_id]
        del self._in[node_id]
        return node

    def set_property(self, node_id: NodeId, name: str, value: Any) -> None:
        """Set one node property, bumping the generation counter.

        The write-path equivalent of reading through :meth:`sigma` —
        callers that mutate ``node.properties`` directly keep working but
        leave cached derived views (``GraphFrame``) unaware of the change.
        """
        self.node(node_id).properties[name] = value
        self._generation += 1

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------

    def node(self, node_id: NodeId) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise GraphError(f"node {node_id!r} does not exist") from None

    def edge(self, edge_id: EdgeId) -> Edge:
        try:
            return self._edges[edge_id]
        except KeyError:
            raise GraphError(f"edge {edge_id!r} does not exist") from None

    def has_node(self, node_id: NodeId) -> bool:
        return node_id in self._nodes

    def has_edge(self, edge_id: EdgeId) -> bool:
        return edge_id in self._edges

    def nodes(self, label: str | None = None) -> Iterator[Node]:
        """All nodes, optionally filtered by label."""
        for node in self._nodes.values():
            if label is None or node.label == label:
                yield node

    def edges(self, label: str | None = None) -> Iterator[Edge]:
        """All edges, optionally filtered by label."""
        for edge in self._edges.values():
            if label is None or edge.label == label:
                yield edge

    def node_ids(self) -> Iterator[NodeId]:
        return iter(self._nodes)

    def out_edges(self, node_id: NodeId, label: str | None = None) -> Iterator[Edge]:
        for edge_id in self._out.get(node_id, ()):
            edge = self._edges[edge_id]
            if label is None or edge.label == label:
                yield edge

    def in_edges(self, node_id: NodeId, label: str | None = None) -> Iterator[Edge]:
        for edge_id in self._in.get(node_id, ()):
            edge = self._edges[edge_id]
            if label is None or edge.label == label:
                yield edge

    def successors(self, node_id: NodeId, label: str | None = None) -> Iterator[NodeId]:
        for edge in self.out_edges(node_id, label):
            yield edge.target

    def predecessors(self, node_id: NodeId, label: str | None = None) -> Iterator[NodeId]:
        for edge in self.in_edges(node_id, label):
            yield edge.source

    def neighbors(self, node_id: NodeId) -> Iterator[NodeId]:
        """Out- and in-neighbors, deduplicated, self excluded."""
        seen: set[NodeId] = set()
        for other in self.successors(node_id):
            if other != node_id and other not in seen:
                seen.add(other)
                yield other
        for other in self.predecessors(node_id):
            if other != node_id and other not in seen:
                seen.add(other)
                yield other

    def out_degree(self, node_id: NodeId) -> int:
        return len(self._out.get(node_id, ()))

    def in_degree(self, node_id: NodeId) -> int:
        return len(self._in.get(node_id, ()))

    def degree(self, node_id: NodeId) -> int:
        return self.out_degree(node_id) + self.in_degree(node_id)

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def edge_count(self) -> int:
        return len(self._edges)

    # ------------------------------------------------------------------
    # Definition 2.1 accessors (rho / lambda / sigma)
    # ------------------------------------------------------------------

    def rho(self, edge_id: EdgeId) -> tuple[NodeId, NodeId]:
        """The incidence function: edge -> (source, target)."""
        edge = self.edge(edge_id)
        return (edge.source, edge.target)

    def lam(self, element_id: NodeId | EdgeId) -> str | None:
        """The labelling function over nodes and edges (nodes win on id clash)."""
        if element_id in self._nodes:
            return self._nodes[element_id].label
        if element_id in self._edges:
            return self._edges[element_id].label
        raise GraphError(f"element {element_id!r} does not exist")

    def sigma(self, element_id: NodeId | EdgeId, prop: str, default: Any = None) -> Any:
        """The property function over nodes and edges."""
        if element_id in self._nodes:
            return self._nodes[element_id].properties.get(prop, default)
        if element_id in self._edges:
            return self._edges[element_id].properties.get(prop, default)
        raise GraphError(f"element {element_id!r} does not exist")

    # ------------------------------------------------------------------
    # bulk operations
    # ------------------------------------------------------------------

    def copy(self) -> "PropertyGraph":
        clone = type(self).__new__(type(self))
        PropertyGraph.__init__(clone)
        for node in self._nodes.values():
            clone.add_node(node.id, node.label, **node.properties)
        for edge in self._edges.values():
            clone.add_edge(
                edge.source, edge.target, edge.label, edge_id=edge.id, **edge.properties
            )
        clone._next_edge_id = self._next_edge_id
        return clone

    def subgraph(self, node_ids: Iterable[NodeId]) -> "PropertyGraph":
        """The induced subgraph over ``node_ids`` (edges with both ends kept)."""
        keep = set(node_ids)
        sub = type(self).__new__(type(self))
        PropertyGraph.__init__(sub)
        for node_id in keep:
            node = self.node(node_id)
            sub.add_node(node.id, node.label, **node.properties)
        for edge in self._edges.values():
            if edge.source in keep and edge.target in keep:
                sub.add_edge(
                    edge.source, edge.target, edge.label, edge_id=edge.id, **edge.properties
                )
        sub._next_edge_id = self._next_edge_id
        return sub

    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(nodes={self.node_count}, edges={self.edge_count})"
